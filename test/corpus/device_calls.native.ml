(* MiniCU transpiled to parallel OCaml by the native backend. *)
let rec f_clamp (t : Nrt.tctx) (_a0 : Nrt.v) (_a1 : Nrt.v) (_a2 : Nrt.v) : Nrt.v =
  let v_v = ref _a0 in
  let v_lo = ref _a1 in
  let v_hi = ref _a2 in
  (try
    if Nrt.as_bool (let _t0 = !v_v in let _t1 = !v_lo in Nrt.lt _t0 _t1) then begin
      raise_notrace (Nrt.Ret !v_lo)
    end else begin
      ()
    end;
    if Nrt.as_bool (let _t2 = !v_v in let _t3 = !v_hi in Nrt.gt _t2 _t3) then begin
      raise_notrace (Nrt.Ret !v_hi)
    end else begin
      ()
    end;
    raise_notrace (Nrt.Ret !v_v);
    Nrt.Unit
  with Nrt.Ret _r -> _r)
and f_wrap (t : Nrt.tctx) (_a0 : Nrt.v) (_a1 : Nrt.v) : Nrt.v =
  let v_v = ref _a0 in
  let v_n = ref _a1 in
  (try
    raise_notrace (Nrt.Ret (let _t4 = (let _t0 = !v_v in let _t1 = !v_n in Nrt.mod_ _t0 _t1) in let _t5 = (Nrt.Int (0)) in let _t6 = (let _t2 = !v_n in let _t3 = (Nrt.Int (1)) in Nrt.sub _t2 _t3) in f_clamp t _t4 _t5 _t6));
    Nrt.Unit
  with Nrt.Ret _r -> _r)
and f_bump (t : Nrt.tctx) (_a0 : Nrt.v) (_a1 : Nrt.v) (_a2 : Nrt.v) : Nrt.v =
  let v_p = ref _a0 in
  let v_i = ref _a1 in
  let v_by = ref _a2 in
  (try
    (let _t4 = !v_p in let _t5 = !v_i in let _t6 = (let _t2 = (let _t0 = !v_p in let _t1 = !v_i in Nrt.load t _t0 _t1) in let _t3 = !v_by in Nrt.add _t2 _t3) in Nrt.store t _t4 _t5 _t6);
    Nrt.Unit
  with Nrt.Ret _r -> _r)
and k_k (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_o = ref _args.(0) in
  let v_n = ref _args.(1) in
  (try
    let v_i = ref (let _t2 = (let _t0 = (Nrt.member (Nrt.block_idx t) "x") in let _t1 = (Nrt.member (Nrt.block_dim t) "x") in Nrt.mul _t0 _t1) in let _t3 = (Nrt.member (Nrt.thread_idx t) "x") in Nrt.add _t2 _t3) in
    (let v_r = ref (Nrt.Int (0)) in
    (try
      while Nrt.as_bool (let _t4 = !v_r in let _t5 = (Nrt.Int (3)) in Nrt.lt _t4 _t5) do
        (try
          ignore (let _t13 = !v_o in let _t14 = (let _t8 = (let _t6 = !v_i in let _t7 = !v_r in Nrt.add _t6 _t7) in let _t9 = !v_n in f_wrap t _t8 _t9) in let _t15 = (let _t10 = !v_r in let _t11 = (Nrt.Int (0)) in let _t12 = (Nrt.Int (2)) in f_clamp t _t10 _t11 _t12) in f_bump t _t13 _t14 _t15)
        with Nrt.Cont -> ());
        v_r := (let _t16 = !v_r in let _t17 = (Nrt.Int (1)) in Nrt.add _t16 _t17)
      done
    with Nrt.Brk -> ()))
  with Nrt.Ret _ -> ())

let kernels : Nrt.kernel list = [
  { Nrt.k_name = "k"; k_arity = 2; k_fn = k_k };
]
