(* MiniCU transpiled to parallel OCaml by the native backend. *)
let rec k_loops (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_o = ref _args.(0) in
  let v_n = ref _args.(1) in
  (try
    let v_acc = ref (Nrt.Int (0)) in
    (let v_i = ref (Nrt.Int (0)) in
    (try
      while Nrt.as_bool (let _t0 = !v_i in let _t1 = !v_n in Nrt.lt _t0 _t1) do
        (try
          (let v_j = ref !v_i in
          (try
            while Nrt.as_bool (let _t2 = !v_j in let _t3 = !v_n in Nrt.lt _t2 _t3) do
              (try
                if Nrt.as_bool (let _t8 = (let _t6 = (let _t4 = !v_i in let _t5 = !v_j in Nrt.add _t4 _t5) in let _t7 = (Nrt.Int (3)) in Nrt.mod_ _t6 _t7) in let _t9 = (Nrt.Int (0)) in Nrt.eq _t8 _t9) then begin
                  raise_notrace Nrt.Cont
                end else begin
                  ()
                end;
                v_acc := (let _t12 = !v_acc in let _t13 = (let _t10 = !v_i in let _t11 = !v_j in Nrt.mul _t10 _t11) in Nrt.add _t12 _t13)
              with Nrt.Cont -> ());
              v_j := (let _t14 = !v_j in let _t15 = (Nrt.Int (1)) in Nrt.add _t14 _t15)
            done
          with Nrt.Brk -> ()))
        with Nrt.Cont -> ());
        v_i := (let _t16 = !v_i in let _t17 = (Nrt.Int (1)) in Nrt.add _t16 _t17)
      done
    with Nrt.Brk -> ()));
    let v_k = ref (Nrt.Int (0)) in
    (try
      while Nrt.as_bool (Nrt.Bool true) do
        (try
          v_k := (let _t18 = !v_k in let _t19 = (Nrt.Int (1)) in Nrt.add _t18 _t19);
          if Nrt.as_bool (let _t20 = !v_k in let _t21 = !v_n in Nrt.ge _t20 _t21) then begin
            raise_notrace Nrt.Brk
          end else begin
            ()
          end
        with Nrt.Cont -> ())
      done
    with Nrt.Brk -> ());
    (try
      while true do
        (try
          v_acc := (let _t22 = !v_acc in let _t23 = (Nrt.Int (1)) in Nrt.add _t22 _t23);
          raise_notrace Nrt.Brk
        with Nrt.Cont -> ());
      done
    with Nrt.Brk -> ());
    (let _t26 = !v_o in let _t27 = (Nrt.member (Nrt.thread_idx t) "x") in let _t28 = (let _t24 = !v_acc in let _t25 = !v_k in Nrt.add _t24 _t25) in Nrt.store t _t26 _t27 _t28)
  with Nrt.Ret _ -> ())

let kernels : Nrt.kernel list = [
  { Nrt.k_name = "loops"; k_arity = 2; k_fn = k_loops };
]
