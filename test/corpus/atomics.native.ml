(* MiniCU transpiled to parallel OCaml by the native backend. *)
let rec k_tally (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_counters = ref _args.(0) in
  let v_data = ref _args.(1) in
  let v_n = ref _args.(2) in
  (try
    let v_i = ref (let _t2 = (let _t0 = (Nrt.member (Nrt.block_idx t) "x") in let _t1 = (Nrt.member (Nrt.block_dim t) "x") in Nrt.mul _t0 _t1) in let _t3 = (Nrt.member (Nrt.thread_idx t) "x") in Nrt.add _t2 _t3) in
    if Nrt.as_bool (let _t39 = !v_i in let _t40 = !v_n in Nrt.lt _t39 _t40) then begin
      let v_v = ref (let _t4 = !v_data in let _t5 = !v_i in Nrt.load t _t4 _t5) in
      ignore (let _t8 = (let _t6 = !v_counters in let _t7 = (Nrt.Int (0)) in Nrt.addr _t6 _t7) in let _t9 = !v_v in Nrt.atomic_add t _t8 _t9);
      ignore (let _t12 = (let _t10 = !v_counters in let _t11 = (Nrt.Int (1)) in Nrt.addr _t10 _t11) in let _t13 = !v_v in Nrt.atomic_sub t _t12 _t13);
      ignore (let _t16 = (let _t14 = !v_counters in let _t15 = (Nrt.Int (2)) in Nrt.addr _t14 _t15) in let _t17 = !v_v in Nrt.atomic_min t _t16 _t17);
      ignore (let _t20 = (let _t18 = !v_counters in let _t19 = (Nrt.Int (3)) in Nrt.addr _t18 _t19) in let _t21 = !v_v in Nrt.atomic_max t _t20 _t21);
      ignore (let _t24 = (let _t22 = !v_counters in let _t23 = (Nrt.Int (4)) in Nrt.addr _t22 _t23) in let _t25 = !v_v in Nrt.atomic_exch t _t24 _t25);
      let v_seen = ref (let _t26 = !v_counters in let _t27 = (Nrt.Int (5)) in Nrt.load t _t26 _t27) in
      (try
        while Nrt.as_bool (let _t37 = (let _t34 = (let _t32 = !v_counters in let _t33 = (Nrt.Int (5)) in Nrt.addr _t32 _t33) in let _t35 = !v_seen in let _t36 = (let _t30 = !v_seen in let _t31 = !v_v in Nrt.add _t30 _t31) in Nrt.atomic_cas t _t34 _t35 _t36) in let _t38 = !v_seen in Nrt.ne _t37 _t38) do
          (try
            v_seen := (let _t28 = !v_counters in let _t29 = (Nrt.Int (5)) in Nrt.load t _t28 _t29)
          with Nrt.Cont -> ())
        done
      with Nrt.Brk -> ())
    end else begin
      ()
    end
  with Nrt.Ret _ -> ())

let kernels : Nrt.kernel list = [
  { Nrt.k_name = "tally"; k_arity = 3; k_fn = k_tally };
]
