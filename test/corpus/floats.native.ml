(* MiniCU transpiled to parallel OCaml by the native backend. *)
let rec k_fmath (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_o = ref _args.(0) in
  let v_iv = ref _args.(1) in
  let v_n = ref _args.(2) in
  (try
    let v_i = ref (let _t2 = (let _t0 = (Nrt.member (Nrt.block_idx t) "x") in let _t1 = (Nrt.member (Nrt.block_dim t) "x") in Nrt.mul _t0 _t1) in let _t3 = (Nrt.member (Nrt.thread_idx t) "x") in Nrt.add _t2 _t3) in
    if Nrt.as_bool (let _t38 = !v_i in let _t39 = !v_n in Nrt.lt _t38 _t39) then begin
      let v_x = ref (let _t6 = (Nrt.Float (Nrt.as_float (let _t4 = !v_iv in let _t5 = !v_i in Nrt.load t _t4 _t5))) in let _t7 = (Nrt.Float (Int64.float_of_bits 0x4010000000000000L)) in Nrt.div _t6 _t7) in
      let v_y = ref (let _t12 = (Nrt.sqrt_ (Nrt.fabs (let _t10 = !v_x in let _t11 = (Nrt.Float (Int64.float_of_bits 0x4004000000000000L)) in Nrt.sub _t10 _t11))) in let _t13 = (let _t8 = (Nrt.Float (Int64.float_of_bits 0x4000000000000000L)) in let _t9 = (Nrt.Float (Int64.float_of_bits 0x4008000000000000L)) in Nrt.pow_ _t8 _t9) in Nrt.add _t12 _t13) in
      let v_z = ref (let _t18 = (let _t16 = (let _t14 = (Nrt.ceil_ !v_x) in let _t15 = (Nrt.floor_ !v_y) in Nrt.mul _t14 _t15) in let _t17 = (Nrt.exp_ (Nrt.Float (Int64.float_of_bits 0x0L))) in Nrt.sub _t16 _t17) in let _t19 = (Nrt.log_ (Nrt.Float (Int64.float_of_bits 0x3ff0000000000000L))) in Nrt.add _t18 _t19) in
      (let _t28 = !v_o in let _t29 = !v_i in let _t30 = (let _t26 = (let _t24 = !v_x in let _t25 = !v_y in Nrt.min_ _t24 _t25) in let _t27 = (let _t22 = (let _t20 = !v_z in let _t21 = (Nrt.Float (Int64.float_of_bits 0x3fc0000000000000L)) in Nrt.max_ _t20 _t21) in let _t23 = (Nrt.Float (Int64.float_of_bits 0x4062c00000000000L)) in Nrt.mul _t22 _t23) in Nrt.add _t26 _t27) in Nrt.store t _t28 _t29 _t30);
      (let _t35 = !v_iv in let _t36 = !v_i in let _t37 = (Nrt.Int (Nrt.as_int (let _t33 = (let _t31 = !v_o in let _t32 = !v_i in Nrt.load t _t31 _t32) in let _t34 = (Nrt.Float (Int64.float_of_bits 0x3fe0000000000000L)) in Nrt.add _t33 _t34))) in Nrt.store t _t35 _t36 _t37)
    end else begin
      ()
    end
  with Nrt.Ret _ -> ())

let kernels : Nrt.kernel list = [
  { Nrt.k_name = "fmath"; k_arity = 3; k_fn = k_fmath };
]
