(* MiniCU transpiled to parallel OCaml by the native backend. *)
let rec k_child (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_o = ref _args.(0) in
  (try
    let v_i = ref (let _t2 = (let _t0 = (Nrt.member (Nrt.block_idx t) "x") in let _t1 = (Nrt.member (Nrt.block_dim t) "y") in Nrt.mul _t0 _t1) in let _t3 = (Nrt.member (Nrt.thread_idx t) "z") in Nrt.add _t2 _t3) in
    (let _t6 = !v_o in let _t7 = !v_i in let _t8 = (let _t4 = (Nrt.member (Nrt.grid_dim t) "x") in let _t5 = (Nrt.member (Nrt.block_dim t) "z") in Nrt.add _t4 _t5) in Nrt.store t _t6 _t7 _t8)
  with Nrt.Ret _ -> ())
and k_k (t : Nrt.tctx) (_args : Nrt.v array) : unit =
  let v_o = ref _args.(0) in
  let v_n = ref _args.(1) in
  (try
    if Nrt.as_bool (Nrt.Bool (Nrt.as_bool (let _t23 = (Nrt.member (Nrt.thread_idx t) "x") in let _t24 = (Nrt.Int (0)) in Nrt.eq _t23 _t24) && Nrt.as_bool (let _t21 = (Nrt.member (Nrt.block_idx t) "x") in let _t22 = (Nrt.Int (0)) in Nrt.eq _t21 _t22))) then begin
      let v_g = ref (let _t0 = !v_n in let _t1 = (Nrt.Int (2)) in let _t2 = (Nrt.Int (1)) in Nrt.Dim3 (Nrt.as_int _t0, Nrt.as_int _t1, Nrt.as_int _t2)) in
      let v_b = ref (Nrt.Dim3 (1, 1, 1)) in
      (let _t3 = !v_b in let _t4 = (Nrt.Int (8)) in v_b := Nrt.set_member _t3 "x" _t4);
      (let _t5 = !v_b in let _t6 = (Nrt.member !v_g "y") in v_b := Nrt.set_member _t5 "y" _t6);
      (let _t7 = !v_g in let _t8 = (let _t9 = (Nrt.member !v_b "x") in let _t10 = (Nrt.Int (8)) in Nrt.div _t9 _t10) in v_g := Nrt.set_member _t7 "z" _t8);
      (let _t11 = !v_g in let _t12 = !v_b in let _t13 = !v_o in Nrt.launch t "child" _t11 _t12 [_t13]);
      (let _t18 = (let _t16 = (let _t14 = !v_n in let _t15 = (Nrt.Int (2)) in Nrt.div _t14 _t15) in let _t17 = (Nrt.Int (1)) in Nrt.add _t16 _t17) in let _t19 = (Nrt.Int (4)) in let _t20 = !v_o in Nrt.launch t "child" _t18 _t19 [_t20])
    end else begin
      ()
    end
  with Nrt.Ret _ -> ())

let kernels : Nrt.kernel list = [
  { Nrt.k_name = "child"; k_arity = 1; k_fn = k_child };
  { Nrt.k_name = "k"; k_arity = 2; k_fn = k_k };
]
