(* Additional interpreter and scheduler edge cases. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

let run_kernel ?(grid = (1, 1, 1)) ?(block = (1, 1, 1)) ?(out_n = 8) ~kernel
    src =
  let dev = Device.create ~cfg:Config.test_config () in
  Device.load_program dev (Minicu.Parser.program src);
  let out = Device.alloc_int_zeros dev out_n in
  Device.launch dev ~kernel ~grid ~block ~args:[ Value.Ptr out ];
  ignore (Device.sync dev);
  Device.read_ints dev out out_n

let check_out name ?grid ?block ?out_n ~kernel src expected =
  t name (fun () ->
      Alcotest.(check (array int))
        name expected
        (run_kernel ?grid ?block ?out_n ~kernel src))

let suite =
  [
    check_out "negative modulo follows OCaml (C99 truncation)" ~kernel:"k"
      ~out_n:2
      "__global__ void k(int* o) { int a = 0 - 7; o[0] = a % 3; o[1] = a / 3; }"
      [| -1; -2 |];
    check_out "shift and bit operators" ~kernel:"k" ~out_n:4
      "__global__ void k(int* o) { o[0] = 1 << 10; o[1] = 0 - 8 >> 1; o[2] = \
       12 ^ 10; o[3] = 12 | 3; }"
      [| 1024; -4; 6; 15 |];
    check_out "ternary evaluates a single branch" ~kernel:"k" ~out_n:2
      "__global__ void k(int* o) { int x = 0; int y = true ? 1 : o[100]; \
       o[0] = y; o[1] = x; }"
      [| 1; 0 |];
    check_out "short-circuit && avoids the right side" ~kernel:"k" ~out_n:1
      "__global__ void k(int* o) { int i = 100; if (i < 8 && o[i] == 0) { \
       o[0] = 1; } else { o[0] = 2; } }"
      [| 2 |];
    check_out "short-circuit || avoids the right side" ~kernel:"k" ~out_n:1
      "__global__ void k(int* o) { int i = 100; if (i > 8 || o[i] == 0) { \
       o[0] = 1; } }"
      [| 1 |];
    check_out "for-header step runs after continue" ~kernel:"k" ~out_n:1
      "__global__ void k(int* o) { int s = 0; for (int i = 0; i < 6; i++) { \
       if (i == 2) { continue; } s = s + i; } o[0] = s; }"
      [| 13 |];
    check_out "while with break deep in nesting" ~kernel:"k" ~out_n:1
      "__global__ void k(int* o) { int n = 0; while (true) { if (n > 4) { if \
       (true) { break; } } n = n + 1; } o[0] = n; }"
      [| 5 |];
    check_out "device function sees caller's memory, not frame" ~kernel:"k"
      ~out_n:2
      "__device__ void set(int* p, int v) { p[0] = v; int local = 99; \
       local = local + 1; } __global__ void k(int* o) { int local = 5; \
       set(o + 1, 7); o[0] = local; }"
      [| 5; 7 |];
    check_out "launch from a device function called by the kernel"
      ~kernel:"p" ~out_n:2
      "__global__ void c(int* o) { o[1] = 11; } __device__ void helper(int* \
       o) { c<<<1, 1>>>(o); } __global__ void p(int* o) { helper(o); o[0] = \
       1; }"
      [| 1; 11 |];
    check_out "2-D grid covers all blocks" ~kernel:"k" ~grid:(2, 3, 1)
      ~block:(1, 1, 1) ~out_n:6
      "__global__ void k(int* o) { o[blockIdx.y * 2 + blockIdx.x] = 1 + \
       blockIdx.x + blockIdx.y * 2; }"
      [| 1; 2; 3; 4; 5; 6 |];
    check_out "3-D launch config via dim3 literals" ~kernel:"p" ~out_n:8
      "__global__ void c(int* o) { int i = (blockIdx.z * 2 + blockIdx.y) * 2 \
       + blockIdx.x; o[i] = i + 1; } __global__ void p(int* o) { c<<<dim3(2, \
       2, 2), 1>>>(o); }"
      [| 1; 2; 3; 4; 5; 6; 7; 8 |];
    check_out "atomic float accumulation on a block-shared malloc"
      ~kernel:"k" ~block:(4, 1, 1) ~out_n:1
      "__global__ void k(int* o) { __shared__ float* sp[1]; if (threadIdx.x \
       == 0) { sp[0] = (float*)malloc(1); sp[0][0] = 0.0; } \
       __syncthreads(); float* f = sp[0]; atomicAdd(&f[0], 0.25); \
       __syncthreads(); if (threadIdx.x == 0) { o[0] = (int)(f[0] * 4.0); } }"
      [| 4 |];
    check_out "device malloc is per calling thread (as in CUDA)" ~kernel:"k"
      ~block:(4, 1, 1) ~out_n:4
      "__global__ void k(int* o) { int* mine = (int*)malloc(1); mine[0] = \
       threadIdx.x * 10; o[threadIdx.x] = mine[0]; }"
      [| 0; 10; 20; 30 |];
    t "shared memory is freed at block end" (fun () ->
        let dev = Device.create ~cfg:Config.test_config () in
        Device.load_program dev
          (Minicu.Parser.program
             "__global__ void k(int* o) { __shared__ int b[64]; \
              b[threadIdx.x] = 1; o[0] = b[threadIdx.x]; }");
        let out = Device.alloc_int_zeros dev 1 in
        let mem = Device.memory dev in
        let before = Memory.allocated_elems mem in
        Device.launch dev ~kernel:"k" ~grid:(4, 1, 1) ~block:(32, 1, 1)
          ~args:[ Value.Ptr out ];
        ignore (Device.sync dev);
        (* allocation high-water grew by the shared buffers, but they are
           freed: a second round must not fault and must reuse semantics *)
        Alcotest.(check bool) "allocated counted" true
          (Memory.allocated_elems mem >= before + (4 * 64));
        Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(32, 1, 1)
          ~args:[ Value.Ptr out ];
        ignore (Device.sync dev));
    t "grids from different host launches interleave deterministically"
      (fun () ->
        let run () =
          let dev = Device.create ~cfg:Config.test_config () in
          Device.load_program dev
            (Minicu.Parser.program
               "__global__ void k(int* o, int tag) { \
                atomicAdd(&o[0], tag); o[1 + blockIdx.x % 4] = tag; }");
          let out = Device.alloc_int_zeros dev 5 in
          Device.launch dev ~kernel:"k" ~grid:(4, 1, 1) ~block:(8, 1, 1)
            ~args:[ Value.Ptr out; Value.Int 1 ];
          Device.launch dev ~kernel:"k" ~grid:(4, 1, 1) ~block:(8, 1, 1)
            ~args:[ Value.Ptr out; Value.Int 2 ];
          ignore (Device.sync dev);
          Device.read_ints dev out 5
        in
        Alcotest.(check (array int)) "two identical runs" (run ()) (run ()));
    t "makespan grows with serial dependency chains" (fun () ->
        let src =
          "__global__ void k(int* o, int n) { int s = 0; for (int i = 0; i < \
           n; i++) { s = s + o[i % 4]; } o[blockIdx.x % 4] = s; }"
        in
        let run n =
          let dev = Device.create ~cfg:Config.test_config () in
          Device.load_program dev (Minicu.Parser.program src);
          let out = Device.alloc_int_zeros dev 4 in
          Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(32, 1, 1)
            ~args:[ Value.Ptr out; Value.Int n ];
          Device.sync dev
        in
        let t100 = run 100 and t1000 = run 1000 in
        Alcotest.(check bool) "10x work, >5x time" true (t1000 > t100 *. 5.0));
    t "warp divergence makes the straggler the warp's cost" (fun () ->
        (* one thread does 100x the work of its warp-mates: warp cost must
           track the straggler, not the average *)
        let src =
          "__global__ void k(int* o, int heavy) { int n = threadIdx.x == 0 ? \
           heavy : 1; int s = 0; for (int i = 0; i < n; i++) { s = s + i; } \
           o[threadIdx.x] = s; }"
        in
        let run heavy =
          let dev = Device.create ~cfg:Config.test_config () in
          Device.load_program dev (Minicu.Parser.program src);
          let out = Device.alloc_int_zeros dev 32 in
          Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(32, 1, 1)
            ~args:[ Value.Ptr out; Value.Int heavy ];
          Device.sync dev
        in
        let balanced = run 1 and skewed = run 1000 in
        Alcotest.(check bool) "straggler dominates" true
          (skewed > balanced *. 10.0));
    t "empty statement lists and nested anonymous blocks" (fun () ->
        let got =
          run_kernel ~kernel:"k" ~out_n:1
            "__global__ void k(int* o) { { } { { o[0] = 3; } } }"
        in
        Alcotest.(check (array int)) "ok" [| 3 |] got);
  ]
