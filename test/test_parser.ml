(* Parser unit tests: expression precedence, statements, functions,
   launches, and error reporting. *)

open Minicu
open Minicu.Ast

let expr_eq name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = Parser.expr_of_string src in
      if not (equal_expr got expected) then
        Alcotest.failf "parsed %s, expected %s" (show_expr got)
          (show_expr expected))

let stmt_shape name src pred =
  Alcotest.test_case name `Quick (fun () ->
      let s = Parser.stmt_of_string src in
      if not (pred s) then Alcotest.failf "unexpected shape: %s" (show_stmt s))

let parse_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match Parser.program src with
      | _ -> Alcotest.failf "expected parse error"
      | exception Loc.Error _ -> ())

(* Like [parse_fails], but also pin the reported error location — the
   parser's errors must point at the offending token, not the start of the
   file or statement. *)
let parse_fails_at name src ~line ~col =
  Alcotest.test_case name `Quick (fun () ->
      match Parser.program src with
      | _ -> Alcotest.failf "expected parse error"
      | exception Loc.Error (loc, _) ->
          Alcotest.(check int) "line" line loc.line;
          Alcotest.(check int) "col" col loc.col)

let v x = Var x
let i n = Int_lit n

let suite =
  [
    (* ---- expressions ---- *)
    expr_eq "mul binds tighter than add" "a + b * c"
      (Binop (Add, v "a", Binop (Mul, v "b", v "c")));
    expr_eq "left assoc sub" "a - b - c"
      (Binop (Sub, Binop (Sub, v "a", v "b"), v "c"));
    expr_eq "parens override" "(a + b) * c"
      (Binop (Mul, Binop (Add, v "a", v "b"), v "c"));
    expr_eq "comparison below shift" "a >> 1 < b"
      (Binop (Lt, Binop (Shr, v "a", i 1), v "b"));
    expr_eq "logical precedence" "a && b || c && d"
      (Binop (LOr, Binop (LAnd, v "a", v "b"), Binop (LAnd, v "c", v "d")));
    expr_eq "bitand between eq and xor" "a == b & c"
      (Binop (BAnd, Binop (Eq, v "a", v "b"), v "c"));
    expr_eq "ternary right assoc" "a ? b : c ? d : e"
      (Ternary (v "a", v "b", Ternary (v "c", v "d", v "e")));
    expr_eq "ternary as operand" "x + (a ? b : c)"
      (Binop (Add, v "x", Ternary (v "a", v "b", v "c")));
    expr_eq "unary minus" "-a + b" (Binop (Add, Unop (Neg, v "a"), v "b"));
    expr_eq "double negation" "!!a" (Unop (Not, Unop (Not, v "a")));
    expr_eq "address of element" "&a[i]" (Addr_of (Index (v "a", v "i")));
    expr_eq "index chain" "a[i][j]" (Index (Index (v "a", v "i"), v "j"));
    expr_eq "member access" "blockIdx.x" (Member (v "blockIdx", "x"));
    expr_eq "member of index" "a[i].y" (Member (Index (v "a", v "i"), "y"));
    expr_eq "call no args" "f()" (Call ("f", []));
    expr_eq "call with args" "min(a, b + 1)"
      (Call ("min", [ v "a"; Binop (Add, v "b", i 1) ]));
    expr_eq "nested calls" "f(g(x))" (Call ("f", [ Call ("g", [ v "x" ]) ]));
    expr_eq "int cast" "(int)x" (Cast (TInt, v "x"));
    expr_eq "float cast of division" "(float)a / b"
      (Binop (Div, Cast (TFloat, v "a"), v "b"));
    expr_eq "pointer cast" "(float*)p" (Cast (TPtr TFloat, v "p"));
    expr_eq "dim3 one arg pads" "dim3(n)" (Dim3_ctor (v "n", i 1, i 1));
    expr_eq "dim3 three args" "dim3(a, b, c)" (Dim3_ctor (v "a", v "b", v "c"));
    expr_eq "ceil div pattern a" "(n - 1) / b + 1"
      (Binop (Add, Binop (Div, Binop (Sub, v "n", i 1), v "b"), i 1));
    expr_eq "float literal" "0.5" (Float_lit 0.5);
    expr_eq "bool literals" "true && false"
      (Binop (LAnd, Bool_lit true, Bool_lit false));
    (* ---- statements ---- *)
    stmt_shape "decl with init" "int x = 3;" (fun s ->
        match s.sdesc with Decl (TInt, "x", Some (Int_lit 3)) -> true | _ -> false);
    stmt_shape "pointer decl" "float* p;" (fun s ->
        match s.sdesc with Decl (TPtr TFloat, "p", None) -> true | _ -> false);
    stmt_shape "compound assign desugars" "x += 2;" (fun s ->
        match s.sdesc with
        | Assign (Var "x", Binop (Add, Var "x", Int_lit 2)) -> true
        | _ -> false);
    stmt_shape "increment desugars" "i++;" (fun s ->
        match s.sdesc with
        | Assign (Var "i", Binop (Add, Var "i", Int_lit 1)) -> true
        | _ -> false);
    stmt_shape "if without else" "if (a) { x = 1; }" (fun s ->
        match s.sdesc with If (Var "a", [ _ ], []) -> true | _ -> false);
    stmt_shape "if-else" "if (a) { x = 1; } else { x = 2; }" (fun s ->
        match s.sdesc with If (_, [ _ ], [ _ ]) -> true | _ -> false);
    stmt_shape "single-statement bodies" "if (a) x = 1; else x = 2;" (fun s ->
        match s.sdesc with If (_, [ _ ], [ _ ]) -> true | _ -> false);
    stmt_shape "for loop" "for (int i = 0; i < n; i++) { s = s + i; }"
      (fun s ->
        match s.sdesc with
        | For (Some _, Some (Binop (Lt, _, _)), Some _, [ _ ]) -> true
        | _ -> false);
    stmt_shape "for with empty header" "for (;;) { break; }" (fun s ->
        match s.sdesc with For (None, None, None, [ _ ]) -> true | _ -> false);
    stmt_shape "while loop" "while (x < 10) x = x * 2;" (fun s ->
        match s.sdesc with While (_, [ _ ]) -> true | _ -> false);
    stmt_shape "launch statement" "child<<<g, b>>>(x, y);" (fun s ->
        match s.sdesc with
        | Launch { l_kernel = "child"; l_args = [ Var "x"; Var "y" ]; _ } -> true
        | _ -> false);
    stmt_shape "launch with ceil-div config"
      "child<<<(n + 31) / 32, 32>>>(d);" (fun s ->
        match s.sdesc with
        | Launch { l_grid = Binop (Div, _, _); l_block = Int_lit 32; _ } -> true
        | _ -> false);
    stmt_shape "sync statement" "__syncthreads();" (fun s -> s.sdesc = Sync);
    stmt_shape "syncwarp statement" "__syncwarp();" (fun s -> s.sdesc = Syncwarp);
    stmt_shape "threadfence statement" "__threadfence();" (fun s ->
        s.sdesc = Threadfence);
    stmt_shape "shared declaration" "__shared__ int buf[256];" (fun s ->
        match s.sdesc with
        | Decl_shared (TInt, "buf", Int_lit 256) -> true
        | _ -> false);
    stmt_shape "return value" "return x + 1;" (fun s ->
        match s.sdesc with Return (Some _) -> true | _ -> false);
    stmt_shape "anonymous block becomes if(true)" "{ int x = 1; x = 2; }"
      (fun s ->
        match s.sdesc with If (Bool_lit true, [ _; _ ], []) -> true | _ -> false);
    (* ---- functions ---- *)
    Alcotest.test_case "global kernel parses" `Quick (fun () ->
        let p = Parser.program "__global__ void k(int* a, int n) { a[0] = n; }" in
        match p with
        | [ f ] ->
            Alcotest.(check string) "name" "k" f.f_name;
            Alcotest.(check bool) "kind" true (f.f_kind = Global);
            Alcotest.(check int) "params" 2 (List.length f.f_params)
        | _ -> Alcotest.fail "expected one function");
    Alcotest.test_case "device function with return type" `Quick (fun () ->
        let p = Parser.program "__device__ int f(int x) { return x * 2; }" in
        match p with
        | [ f ] ->
            Alcotest.(check bool) "kind" true (f.f_kind = Device);
            Alcotest.(check bool) "ret" true (f.f_ret = TInt)
        | _ -> Alcotest.fail "expected one function");
    Alcotest.test_case "multiple functions" `Quick (fun () ->
        let p =
          Parser.program
            "__global__ void a() { } __device__ void b() { } __global__ void \
             c() { }"
        in
        Alcotest.(check int) "count" 3 (List.length p));
    (* ---- errors ---- *)
    parse_fails "kernel returning non-void" "__global__ int k() { return 1; }";
    parse_fails "missing semicolon" "__global__ void k() { int x = 1 }";
    parse_fails "unbalanced braces" "__global__ void k() { if (x) { }";
    parse_fails "assignment to non-lvalue" "__global__ void k() { 1 = 2; }";
    parse_fails "missing launch args" "__global__ void k() { c<<<1>>>(); }";
    parse_fails "top-level statement" "int x = 3;";
    parse_fails "trailing garbage after expr"
      "__global__ void k() { int x = 1; } garbage";
    (* ---- error locations (malformed launches and friends) ---- *)
    parse_fails_at "launch missing block argument points at >>>"
      "__global__ void k() {\n  c<<<1>>>();\n}" ~line:2 ~col:8;
    parse_fails_at "launch closed with >> points past the arguments"
      "__global__ void k() {\n  c<<<1, 2>>(0);\n}" ~line:2 ~col:16;
    parse_fails_at "launch missing grid expression points inside <<<"
      "__global__ void k() {\n  c<<<>>>();\n}" ~line:2 ~col:7;
    parse_fails_at "unclosed launch argument list points at ;"
      "__global__ void k() {\n  c<<<1, 2>>>(0;\n}" ~line:2 ~col:16;
    parse_fails_at "missing semicolon points at the closing brace"
      "__global__ void k() { int x = 1 }" ~line:1 ~col:33;
  ]
