(* Cross-checks of the benchmark reference implementations themselves: the
   harness validates simulator output against these references, so the
   references must be right. Each is checked against an independent
   algorithm or invariant on random inputs. *)

let t name f = Alcotest.test_case name `Quick f

let random_graph seed n m =
  let rng = Workloads.Rng.create ~seed in
  let edges =
    List.init m (fun _ ->
        let a = Workloads.Rng.int rng n and b = Workloads.Rng.int rng n in
        (a, b, 1 + Workloads.Rng.int rng 50))
  in
  Workloads.Csr.symmetrize (Workloads.Csr.of_edges ~n edges)

(* Kruskal with union-find: the independent MST algorithm. *)
let kruskal (g : Workloads.Csr.t) =
  let parent = Array.init g.n Fun.id in
  let rec find v = if parent.(v) = v then v else find parent.(v) in
  let edges = ref [] in
  for v = 0 to g.n - 1 do
    for e = g.row.(v) to g.row.(v + 1) - 1 do
      if v < g.col.(e) then edges := (g.weight.(e), v, g.col.(e)) :: !edges
    done
  done;
  let total = ref 0 in
  List.iter
    (fun (w, a, b) ->
      let ra = find a and rb = find b in
      if ra <> rb then begin
        parent.(ra) <- rb;
        total := !total + w
      end)
    (List.sort compare !edges);
  !total

(* Brute-force triangle counting over vertex triples (small graphs). *)
let brute_triangles (g : Workloads.Csr.t) =
  let adj = Array.make_matrix g.n g.n false in
  for v = 0 to g.n - 1 do
    Array.iter (fun u -> adj.(v).(u) <- true) (Workloads.Csr.neighbors g v)
  done;
  let count = ref 0 in
  for a = 0 to g.n - 1 do
    for b = a + 1 to g.n - 1 do
      if adj.(a).(b) then
        for c = b + 1 to g.n - 1 do
          if adj.(a).(c) && adj.(b).(c) then incr count
        done
    done
  done;
  !count

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:40
         ~name:"MST reference: Boruvka total equals Kruskal total"
         QCheck.(pair (int_range 2 40) (int_range 1 120))
         (fun (n, m) ->
           let g = random_graph (n * 1000 + m) n m in
           (* tie-break weights so the MST weight is determined: Boruvka
              packs edge ids; Kruskal ignores them — totals agree even with
              ties because all MSTs share the same total weight *)
           let boruvka_total, _, _ = Benchmarks.Mst.host_boruvka g in
           boruvka_total = kruskal g));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:25
         ~name:"TC reference: binary-search count equals brute force"
         QCheck.(pair (int_range 3 25) (int_range 1 80))
         (fun (n, m) ->
           let g =
             Workloads.Csr.sort_neighbors (random_graph (n * 7 + m) n m)
           in
           let cap = 10_000 in
           Benchmarks.Tc.reference g ~cap () = brute_triangles g));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30
         ~name:"BFS reference: adjacent levels differ by at most one"
         QCheck.(pair (int_range 2 40) (int_range 1 120))
         (fun (n, m) ->
           let g = random_graph (n * 13 + m) n m in
           (* recompute levels the same way the reference does, then check
              the BFS invariant *)
           let labels = Array.make g.n (-1) in
           labels.(0) <- 0;
           let q = Queue.create () in
           Queue.add 0 q;
           while not (Queue.is_empty q) do
             let v = Queue.pop q in
             Array.iter
               (fun u ->
                 if labels.(u) = -1 then begin
                   labels.(u) <- labels.(v) + 1;
                   Queue.add u q
                 end)
               (Workloads.Csr.neighbors g v)
           done;
           let ok = ref true in
           for v = 0 to g.n - 1 do
             Array.iter
               (fun u ->
                 if labels.(v) >= 0 && labels.(u) >= 0 then
                   ok := !ok && abs (labels.(v) - labels.(u)) <= 1
                 else ok := !ok && labels.(v) = -1 = (labels.(u) = -1))
               (Workloads.Csr.neighbors g v)
           done;
           !ok
           && Benchmarks.Bfs.reference g ()
              = Benchmarks.Bench_common.array_hash labels));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30
         ~name:"SSSP reference: distances satisfy the relaxation property"
         QCheck.(pair (int_range 2 30) (int_range 1 90))
         (fun (n, m) ->
           let g = random_graph (n * 31 + m) n m in
           (* Bellman-Ford from scratch must agree with the Dijkstra
              reference hash *)
           let inf = Benchmarks.Sssp.inf in
           let dist = Array.make g.n inf in
           dist.(0) <- 0;
           for _ = 1 to g.n do
             for v = 0 to g.n - 1 do
               if dist.(v) < inf then
                 for e = g.row.(v) to g.row.(v + 1) - 1 do
                   let u = g.col.(e) in
                   if dist.(v) + g.weight.(e) < dist.(u) then
                     dist.(u) <- dist.(v) + g.weight.(e)
                 done
             done
           done;
           Benchmarks.Sssp.reference g ()
           = Benchmarks.Bench_common.array_hash dist));
    t "SP factor-graph arrays are mutually consistent" (fun () ->
        let f = Workloads.Sat.rand3 ~n_vars:60 ~n_clauses:220 () in
        let a = Benchmarks.Sp.build_arrays f in
        (* every occurrence points to a clause slot owned by its variable *)
        for v = 0 to f.n_vars - 1 do
          for oi = a.o_row.(v) to a.o_row.(v + 1) - 1 do
            let c = a.o_cidx.(oi) and slot = a.o_slot.(oi) in
            let lit = f.clauses.(c).(slot) in
            Alcotest.(check int) "slot belongs to variable" v (abs lit - 1)
          done
        done;
        Alcotest.(check int) "cells = total literals" a.n_cells
          (Array.fold_left (fun s c -> s + Array.length c) 0 f.clauses));
    t "BT reference equals the simulator bit for bit" (fun () ->
        (* stronger than the generic harness check: run on a dataset with
           degenerate (near-straight) lines that stress the len guard *)
        let d =
          Workloads.Bezier.generate ~seed:99 ~name:"straightish" ~n_lines:50
            ~max_tessellation:64 ~curvature_scale:0.001 ()
        in
        let spec = Benchmarks.Bt.spec ~dataset:d in
        let fp, _, _ = Benchmarks.Bench_common.run_variant spec `No_cdp in
        Alcotest.(check int) "fingerprints" (spec.reference ()) fp);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200
         ~name:"parser fuzz: random input never crashes or loops"
         QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 60)
                   (QCheck.Gen.char_range ' ' '~'))
         (fun s ->
           match Minicu.Parser.program s with
           | _ -> true
           | exception Minicu.Loc.Error _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200
         ~name:"lexer fuzz: token streams always terminate"
         QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80)
                   (QCheck.Gen.char_range ' ' '~'))
         (fun s ->
           match Minicu.Lexer.tokenize s with
           | toks -> List.length toks <= String.length s + 1
           | exception Minicu.Loc.Error _ -> true));
  ]
