(* Pins the consolidated test-iteration knobs (Harness.Env) and keeps
   the README's knob table in sync with the declared defaults: env.mli
   promises the two cannot drift, and this suite is that promise. *)

let t name f = Alcotest.test_case name `Quick f

(* The declared defaults, pinned exactly: changing a default is a
   deliberate act that must also update the README table (checked below)
   and the alias budgets it documents. *)
let expected =
  [
    ("DPFUZZ_ITERS", 25);
    ("DPCHECK_ITERS", 200);
    ("DPOPTD_REQS", 200);
    ("BYTECODE_SMOKE_ITERS", 60_000);
    ("NATIVE_SMOKE_ITERS", 3);
    ("MT_SMOKE_JOBS", 6);
    ("SCALE_JOBS", 4);
    ("SCALE_SMOKE", 2);
  ]

let test_defaults () =
  Alcotest.(check int)
    "knob count" (List.length expected)
    (List.length Harness.Env.knobs);
  List.iter
    (fun (name, d) ->
      Alcotest.(check int) (name ^ " default") d (Harness.Env.default name))
    expected

let test_get_unset () =
  (* the suite runs without these variables set, so [get] must resolve to
     the declared default for every knob *)
  List.iter
    (fun (k : Harness.Env.knob) ->
      match Sys.getenv_opt k.name with
      | Some _ -> () (* externally overridden: nothing to pin *)
      | None ->
          Alcotest.(check int) (k.name ^ " unset") k.default
            (Harness.Env.get k.name))
    Harness.Env.knobs

let test_unknown_raises () =
  Alcotest.check_raises "unknown knob"
    (Invalid_argument "Harness.Env: unknown knob \"NO_SUCH_KNOB\"") (fun () ->
      ignore (Harness.Env.get "NO_SUCH_KNOB"))

(* The README table row for a knob: "| `NAME` | default | ...". *)
let test_readme_in_sync () =
  let readme =
    (* cwd is test/ under `dune runtest` (the ../README.md dep in
       test/dune stages the file), the project root under `dune exec` *)
    let path =
      List.find Sys.file_exists [ "../README.md"; "README.md" ]
    in
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let lines = String.split_on_char '\n' readme in
  List.iter
    (fun (k : Harness.Env.knob) ->
      let cell = Fmt.str "| `%s` | %d |" k.name k.default in
      if not (List.exists (String.starts_with ~prefix:cell) lines) then
        Alcotest.failf
          "README knob table is missing or stale for %s: expected a row \
           starting with %S"
          k.name cell)
    Harness.Env.knobs

let suite =
  [
    t "knob defaults are the documented ones" test_defaults;
    t "get falls back to the default when unset" test_get_unset;
    t "unknown knobs are rejected" test_unknown_raises;
    t "README knob table matches the declared defaults" test_readme_in_sync;
  ]
