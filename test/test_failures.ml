(* Failure injection: the simulator must catch memory and synchronization
   errors in (possibly transformed) device code, and the harness must
   refuse to report a measurement whose output is wrong. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

let expect_rte f =
  match f () with
  | _ -> Alcotest.fail "expected Runtime_error"
  | exception Value.Runtime_error _ -> ()

let run_src ?(grid = (1, 1, 1)) ?(block = (32, 1, 1)) ?(out_n = 8) ~kernel src =
  let dev = Device.create ~cfg:Config.test_config () in
  Device.load_program dev (Minicu.Parser.program src);
  let out = Device.alloc_int_zeros dev out_n in
  Device.launch dev ~kernel ~grid ~block ~args:[ Value.Ptr out ];
  ignore (Device.sync dev);
  Device.read_ints dev out out_n

let suite =
  [
    t "child reading past its parent's buffer is caught" (fun () ->
        expect_rte (fun () ->
            run_src ~kernel:"p"
              {|
__global__ void c(int* o, int base) { o[base + threadIdx.x] = 1; }
__global__ void p(int* o) { c<<<1, 32>>>(o, 1000); }
|}));
    t "corrupt aggregation buffers are caught, not silently wrong" (fun () ->
        (* shrink the aggregation pass's buffers: the transformed parent
           must fault instead of corrupting memory *)
        let prog =
          Minicu.Parser.program Test_helpers.nested_src
        in
        let r =
          Dpopt.Pipeline.run
            ~opts:
              (Dpopt.Pipeline.make
                 ~granularity:(Dpopt.Aggregation.Multi_block 2) ())
            prog
        in
        let broken_auto =
          List.map
            (fun (k, aps) ->
              ( k,
                List.map
                  (fun (ap : Dpopt.Aggregation.auto_param) ->
                    {
                      Device.ap_name = ap.ap_name;
                      ap_elems = (fun ~grid:_ ~block:_ -> 1) (* way too small *);
                    })
                  aps ))
            r.auto_params
        in
        expect_rte (fun () ->
            let dev = Device.create ~cfg:Config.test_config () in
            Device.load_program dev r.prog ~auto_params:broken_auto;
            let rows = Array.init 41 (fun i -> i * (i - 1) / 2) in
            let d_rows = Device.alloc_ints dev rows in
            let d_data = Device.alloc_int_zeros dev rows.(40) in
            Device.launch dev ~kernel:"parent" ~grid:(2, 1, 1)
              ~block:(32, 1, 1)
              ~args:[ Value.Ptr d_rows; Value.Ptr d_data; Value.Int 40 ];
            Device.sync dev));
    t "divergent warp collectives are detected" (fun () ->
        expect_rte (fun () ->
            run_src ~kernel:"k"
              {|
__global__ void k(int* o) {
  if (threadIdx.x < 16) {
    o[0] = warp_sum(1);
  } else {
    __syncthreads();
  }
}
|}));
    t "missing launch argument is rejected at launch time" (fun () ->
        expect_rte (fun () ->
            let dev = Device.create ~cfg:Config.test_config () in
            Device.load_program dev
              (Minicu.Parser.program
                 "__global__ void k(int* o, int n) { o[0] = n; }");
            let out = Device.alloc_int_zeros dev 1 in
            Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(1, 1, 1)
              ~args:[ Value.Ptr out ]));
    t "launching an unknown kernel is rejected" (fun () ->
        expect_rte (fun () ->
            let dev = Device.create ~cfg:Config.test_config () in
            Device.load_program dev
              (Minicu.Parser.program "__global__ void k(int* o) { o[0] = 1; }");
            Device.launch dev ~kernel:"nope" ~grid:(1, 1, 1) ~block:(1, 1, 1)
              ~args:[]));
    t "launching before loading a program is rejected" (fun () ->
        expect_rte (fun () ->
            let dev = Device.create ~cfg:Config.test_config () in
            Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(1, 1, 1)
              ~args:[]));
    t "device function infinite recursion hits the frame allocator, not \
       the host"
      (fun () ->
        (* guard: a stack-overflow in interpreted code must surface as an
           OCaml exception we can catch, not kill the process. We use a
           bounded-but-deep recursion to stay safe. *)
        let got =
          run_src ~kernel:"k" ~out_n:1
            {|
__device__ int down(int n) { if (n <= 0) { return 0; } return down(n - 1) + 1; }
__global__ void k(int* o) { if (threadIdx.x == 0) { o[0] = down(2000); } }
|}
        in
        Alcotest.(check (array int)) "depth 2000 ok" [| 2000 |] got);
    t "validation failure surfaces through the harness" (fun () ->
        (* a spec whose reference disagrees with the device run *)
        let ds = Workloads.Graph_gen.road_dataset ~rows:6 ~cols:6 () in
        let good = Benchmarks.Bfs.spec ~dataset:ds in
        let bad = { good with reference = (fun () -> 42) } in
        match Harness.Experiment.run bad Harness.Variant.No_cdp with
        | _ -> Alcotest.fail "expected Validation_failure"
        | exception Harness.Experiment.Validation_failure _ -> ());
  ]
