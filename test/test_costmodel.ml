(* Cost-model suite: rank-correlation statistics against hand-computed
   values, golden feature vectors for three benchmarks (promote with
   CORPUS_PROMOTE=1, like the corpus suite), the registry-wide accuracy
   bar for the checked-in coefficient table, and the surrogate-guided
   autotuning acceptance numbers (runs saved, best within 10%). *)

let t name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---------------------------------------------------------------- *)
(* Rank-correlation statistics                                       *)
(* ---------------------------------------------------------------- *)

let check_nan name v =
  Alcotest.(check bool) name true (Float.is_nan v)

let stats_tests =
  [
    t "spearman matches the hand-computed value" (fun () ->
        (* y = [1;3;2;5;4]: d² sums to 4, ρ = 1 − 6·4/(5·24) = 0.8 *)
        let rho =
          Harness.Stats.spearman [ 1.; 2.; 3.; 4.; 5. ] [ 1.; 3.; 2.; 5.; 4. ]
        in
        Alcotest.(check (float 1e-9)) "rho" 0.8 rho;
        Alcotest.(check (float 1e-9)) "perfect" 1.0
          (Harness.Stats.spearman [ 1.; 2.; 3. ] [ 10.; 20.; 30. ]);
        Alcotest.(check (float 1e-9)) "reversed" (-1.0)
          (Harness.Stats.spearman [ 1.; 2.; 3. ] [ 3.; 2.; 1. ]));
    t "kendall tau matches the hand-computed value" (fun () ->
        (* y = [1;3;2;5;4]: 8 concordant, 2 discordant pairs → τ = 0.6 *)
        let tau =
          Harness.Stats.kendall_tau [ 1.; 2.; 3.; 4.; 5. ]
            [ 1.; 3.; 2.; 5.; 4. ]
        in
        Alcotest.(check (float 1e-9)) "tau" 0.6 tau;
        Alcotest.(check (float 1e-9)) "reversed" (-1.0)
          (Harness.Stats.kendall_tau [ 1.; 2.; 3. ] [ 3.; 2.; 1. ]));
    t "ties get average ranks" (fun () ->
        (* x = [1;1;2], y = [1;2;3]: rank(x) = [1.5;1.5;3], Pearson with
           [1;2;3] = (3−2.25)/√(1.5·2) ≈ 0.8660 *)
        let rho = Harness.Stats.spearman [ 1.; 1.; 2. ] [ 1.; 2.; 3. ] in
        Alcotest.(check (float 1e-4)) "tied rho" 0.8660 rho;
        Alcotest.(check (float 1e-9)) "tied tau-b = 1 on agreeing ties" 1.0
          (Harness.Stats.kendall_tau [ 1.; 1.; 2.; 2. ] [ 1.; 1.; 2.; 2. ]));
    t "degenerate inputs yield nan" (fun () ->
        check_nan "spearman []" (Harness.Stats.spearman [] []);
        check_nan "kendall []" (Harness.Stats.kendall_tau [] []);
        check_nan "spearman singleton" (Harness.Stats.spearman [ 1. ] [ 2. ]);
        check_nan "spearman all-tied side"
          (Harness.Stats.spearman [ 1.; 1.; 1. ] [ 1.; 2.; 3. ]);
        Alcotest.check_raises "length mismatch"
          (Invalid_argument "Stats.spearman: length mismatch") (fun () ->
            ignore (Harness.Stats.spearman [ 1. ] [ 1.; 2. ])));
  ]

(* ---------------------------------------------------------------- *)
(* Golden feature vectors (test/corpus, CORPUS_PROMOTE=1 to rewrite)  *)
(* ---------------------------------------------------------------- *)

let corpus_dir =
  if Sys.file_exists "corpus" then "corpus"
  else if Sys.file_exists "test/corpus" then "test/corpus"
  else Fmt.failwith "cannot locate the corpus directory from %s" (Sys.getcwd ())

let promote_dir =
  if Sys.file_exists "../../../test/corpus" then "../../../test/corpus"
  else corpus_dir

let promoting = Sys.getenv_opt "CORPUS_PROMOTE" <> None

let render_features (spec : Benchmarks.Bench_common.spec) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (label, opts) ->
      let f = Costmodel.Feature.of_spec spec ~opts ~label () in
      Buffer.add_string b (Fmt.str "[%s]\n" label);
      Array.iteri
        (fun i v ->
          Buffer.add_string b
            (Fmt.str "%s = %.6g\n" Costmodel.Model.term_names.(i) v))
        (Costmodel.Model.terms f))
    (Dpopt.Pipeline.enumerate ());
  Buffer.contents b

let golden_feature_test ~name ~dataset =
  slow (Fmt.str "golden feature vector: %s/%s" name dataset) (fun () ->
      let spec =
        match Benchmarks.Registry.find ~name ~dataset () with
        | Some s -> s
        | None -> Alcotest.failf "registry has no %s/%s" name dataset
      in
      let golden_name =
        Fmt.str "costmodel_%s_%s.features" (String.lowercase_ascii name)
          (String.lowercase_ascii dataset)
      in
      let actual = render_features spec in
      let committed = Filename.concat corpus_dir golden_name in
      if promoting then
        Out_channel.with_open_text
          (Filename.concat promote_dir golden_name)
          (fun oc -> Out_channel.output_string oc actual)
      else if not (Sys.file_exists committed) then
        Alcotest.failf "no %s; run with CORPUS_PROMOTE=1 to create it"
          golden_name
      else
        let expected =
          In_channel.with_open_text committed In_channel.input_all
        in
        if expected <> actual then
          Alcotest.failf
            "%s/%s feature vector deviates from its golden (%s).@.--- \
             expected@.%s@.--- got@.%s@.If the change is intentional, rerun \
             with CORPUS_PROMOTE=1."
            name dataset golden_name expected actual)

let golden_tests =
  [
    golden_feature_test ~name:"BFS" ~dataset:"KRON";
    golden_feature_test ~name:"BT" ~dataset:"T0032-C16";
    golden_feature_test ~name:"SP" ~dataset:"RAND-3";
  ]

(* ---------------------------------------------------------------- *)
(* Autotune memoization and surrogate pruning                        *)
(* ---------------------------------------------------------------- *)

let tiny_spec () =
  Benchmarks.Bfs.spec ~dataset:(Workloads.Graph_gen.kron_dataset ~scale:7 ())

let tca = { Harness.Variant.t = true; c = true; a = true }

let autotune_tests =
  [
    slow "memo is keyed on params: disabled knobs dedupe" (fun () ->
        (* Only thresholding enabled over 2 thresholds: 2 distinct
           experiments, everything else the rng draws is a cache hit. *)
        let spec = tiny_spec () in
        let space =
          {
            Harness.Autotune.thresholds = [ 32; 64 ];
            cfactors = [ 1; 2; 4 ];
            granularities = Harness.Tuning.all_granularities;
          }
        in
        let combo = { Harness.Variant.t = true; c = false; a = false } in
        let o = Harness.Autotune.search ~budget:8 ~space spec combo in
        Alcotest.(check bool) "at most 2 simulator runs" true
          (o.runs_used <= 2);
        Alcotest.(check bool) "revisits hit the cache" true (o.cache_hits > 0);
        List.iter
          (fun ((p : Harness.Variant.params), _) ->
            Alcotest.(check int) "disabled cfactor pinned to default"
              Harness.Variant.default_params.cfactor p.cfactor)
          o.trace);
    slow "surrogate prunes the grid and stays within 10%" (fun () ->
        let spec = tiny_spec () in
        let plain = Harness.Autotune.search ~budget:12 spec tca in
        let sur =
          Harness.Autotune.search ~budget:12
            ~surrogate:Costmodel.Table.current spec tca
        in
        Alcotest.(check bool)
          (Fmt.str "at least 40%% fewer runs (%d vs %d)" sur.runs_used
             plain.runs_used)
          true
          (float_of_int sur.runs_used
          <= 0.6 *. float_of_int plain.runs_used);
        Alcotest.(check bool)
          (Fmt.str "within 10%% of unpruned best (%.0f vs %.0f)"
             sur.best_time plain.best_time)
          true
          (sur.best_time <= 1.1 *. plain.best_time);
        match sur.surrogate with
        | None -> Alcotest.fail "surrogate report missing"
        | Some r ->
            Alcotest.(check int) "whole grid scored"
              (List.length (Harness.Autotune.enumerate_params tca
                              (Harness.Autotune.default_space spec)))
              r.sr_grid;
            Alcotest.(check int) "simulated = runs_used" sur.runs_used
              r.sr_simulated;
            Alcotest.(check int) "ranking covers the grid" r.sr_grid
              (List.length r.sr_predicted));
    slow "surrogate search is deterministic" (fun () ->
        let spec = tiny_spec () in
        let a =
          Harness.Autotune.search ~surrogate:Costmodel.Table.current spec tca
        in
        let b =
          Harness.Autotune.search ~surrogate:Costmodel.Table.current spec tca
        in
        Alcotest.(check (float 0.0)) "same best" a.best_time b.best_time;
        Alcotest.(check bool) "same params" true
          (a.best_params = b.best_params));
  ]

(* ---------------------------------------------------------------- *)
(* Registry-wide acceptance numbers                                  *)
(* ---------------------------------------------------------------- *)

let registry_tests =
  [
    slow "registry: checked-in table meets the acceptance bars" (fun () ->
        let cm =
          Harness.Pool.with_pool ~jobs:(Harness.Pool.default_jobs ())
            (fun pool -> Harness.Costreport.collect ~pool ())
        in
        Alcotest.(check int) "report carries the shipped table version"
          Costmodel.Table.current.Costmodel.Model.version cm.cm_table_version;
        (* rank correlation: >= 0.8 across the registry, and no benchmark
           below 0.7 (the survivors are near-tie inversions and the T-vs-A
           cluster swap documented in DESIGN.md section 8) *)
        Alcotest.(check bool)
          (Fmt.str "mean spearman %.3f >= 0.8" cm.cm_mean_spearman)
          true
          (cm.cm_mean_spearman >= 0.8);
        List.iter
          (fun (r : Harness.Costreport.bench_report) ->
            Alcotest.(check bool)
              (Fmt.str "%s/%s spearman %.3f >= 0.7" r.cr_bench r.cr_dataset
                 r.cr_spearman)
              true
              (r.cr_spearman >= 0.7);
            Alcotest.(check bool)
              (Fmt.str "%s/%s saved %.0f%% >= 40%%" r.cr_bench r.cr_dataset
                 r.cr_saved_pct)
              true
              (r.cr_saved_pct >= 40.0);
            Alcotest.(check bool)
              (Fmt.str "%s/%s surrogate best %.0f within 10%% of %.0f"
                 r.cr_bench r.cr_dataset r.cr_surrogate_best r.cr_plain_best)
              true r.cr_within_10pct)
          cm.cm_reports;
        (* and the artifact that reports them is self-describing *)
        let path = Filename.temp_file "dpopt" ".json" in
        Harness.Costreport.write_json path cm;
        let body = In_channel.with_open_text path In_channel.input_all in
        Sys.remove path;
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true
              (contains ~needle body))
          [
            "\"schema\": 2"; "\"kind\": \"dpopt.costmodel\"";
            "\"mean_spearman\""; "\"runs_saved_pct\""; "\"within_10pct\"";
          ]);
  ]

(* ---------------------------------------------------------------- *)
(* Sweep artifact schema                                             *)
(* ---------------------------------------------------------------- *)

let sweep_cell : Harness.Sweep.cell =
  {
    sw_bench = "BFS";
    sw_dataset = "KRON";
    sw_variant = "CDP";
    sw_time = 1000.0;
    sw_predicted = 900.0;
    sw_fingerprint = 42;
    sw_speedup_vs_cdp = 1.0;
    sw_wall_s = 0.0;
  }

let schema_tests =
  [
    t "sweep artifacts carry schema version 2" (fun () ->
        Alcotest.(check int) "schema_version" 2 Harness.Sweep.schema_version;
        let t' : Harness.Sweep.t =
          {
            sw_size = Benchmarks.Registry.Small;
            sw_jobs = 1;
            sw_cells =
              [ sweep_cell; { sweep_cell with sw_predicted = nan;
                              sw_variant = "No CDP" } ];
            sw_wall_parallel_s = 0.0;
            sw_wall_sequential_est_s = 0.0;
          }
        in
        let jpath = Filename.temp_file "dpopt" ".json" in
        let cpath = Filename.temp_file "dpopt" ".csv" in
        Harness.Sweep.write_json jpath t';
        Harness.Sweep.write_csv cpath t';
        let json = In_channel.with_open_text jpath In_channel.input_all in
        let csv = In_channel.with_open_text cpath In_channel.input_lines in
        Sys.remove jpath;
        Sys.remove cpath;
        Alcotest.(check bool) "json schema 2" true
          (contains ~needle:"\"schema\": 2" json);
        Alcotest.(check bool) "json kind" true
          (contains ~needle:"\"kind\": \"dpopt.sweep\"" json);
        Alcotest.(check bool) "json predicted" true
          (contains ~needle:"\"predicted_cycles\": 900" json);
        Alcotest.(check bool) "json null predicted for No CDP" true
          (contains ~needle:"\"predicted_cycles\": null" json);
        (match csv with
        | header :: row1 :: _ ->
            Alcotest.(check string) "csv header"
              "schema,bench,dataset,variant,time_cycles,predicted_cycles,\
               fingerprint,speedup_vs_cdp"
              header;
            Alcotest.(check bool) "csv row schema" true
              (String.length row1 > 2 && String.sub row1 0 2 = "2,")
        | _ -> Alcotest.fail "csv too short"));
  ]

let suite =
  stats_tests @ golden_tests @ autotune_tests @ registry_tests @ schema_tests
