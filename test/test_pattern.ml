(* Tests for the ceiling-division pattern analysis (paper Fig. 4). *)

open Minicu
open Dpopt

let parent_body_of src =
  match
    Parser.program ("__global__ void p(int n, int b, int* d) {" ^ src ^ "}")
  with
  | [ f ] -> f.f_body
  | _ -> assert false

(* Extract from a grid expression given in source form. *)
let extract ?(body = "") ?(block = "32") grid =
  let parent_body = parent_body_of body in
  Pattern.desired_threads ~parent_body
    ~grid:(Parser.expr_of_string grid)
    ~block:(Parser.expr_of_string block)

let expects_n name ?body ?block grid expected =
  Alcotest.test_case name `Quick (fun () ->
      match extract ?body ?block grid with
      | Pattern.Exact e ->
          Alcotest.(check string) name expected (Pretty.expr_to_string e)
      | Pattern.Fallback_total -> Alcotest.failf "got fallback for %s" grid)

let expects_fallback name ?body ?block grid =
  Alcotest.test_case name `Quick (fun () ->
      match extract ?body ?block grid with
      | Pattern.Fallback_total -> ()
      | Pattern.Exact e ->
          Alcotest.failf "expected fallback, got %s" (Pretty.expr_to_string e))

let suite =
  [
    (* the five expression patterns of Fig. 4 *)
    expects_n "pattern (a): (N-1)/b+1" "(n - 1) / 32 + 1" "n";
    expects_n "pattern (b): (N+b-1)/b" "(n + 31) / 32" "n";
    expects_n "pattern (c): N/b + (N%b ? ...)"
      "n / 32 + (n % 32 == 0 ? 0 : 1)" "n";
    expects_n "pattern (d): ceil((float)N/b)" "ceil((float)n / 32)" "n";
    expects_n "pattern (e): ceil(N/(float)b)" "ceil(n / (float)32)" "n";
    (* symbolic block dimension *)
    expects_n "symbolic b" ~block:"b" "(n + b - 1) / b" "n";
    (* N can be a compound expression *)
    expects_n "compound N" "(d[5] - d[4] + 31) / 32" "d[5] - d[4]";
    expects_n "N with multiplication kept" "(2 * n + 31) / 32" "2 * n";
    (* intermediate variables are resolved *)
    (* when the dividend is already a named variable, that variable IS the
       recovered N — it is in scope at the launch and becomes [_threads] *)
    expects_n "N through a variable" ~body:"int total = n * 2;"
      "(total + 31) / 32" "total";
    expects_n "whole config through a variable"
      ~body:"int blocks = (n + 31) / 32;" "blocks" "n";
    expects_n "two-level indirection"
      ~body:"int t = n + 1; int blocks = (t - 1) / 32 + 1;" "blocks" "t";
    (* dim3 (pattern (f)) *)
    expects_n "dim3 with one ceil-div" "dim3((n + 31) / 32, 1, 1)" "n";
    expects_n "dim3 with two ceil-divs" ~block:"dim3(8, 8, 1)"
      "dim3((n + 7) / 8, (b + 7) / 8, 1)" "n * b";
    (* fallback cases *)
    expects_fallback "bare variable with no division"
      ~body:"int blocks = n;" "blocks";
    expects_fallback "opaque expression" "n * 2";
    expects_fallback "reassigned variable is not resolved"
      ~body:"int blocks = (n + 31) / 32; blocks = 7;" "blocks";
    Alcotest.test_case "threads_expr fallback is grid*block" `Quick (fun () ->
        let e, kind =
          Pattern.threads_expr ~parent_body:[]
            ~grid:(Parser.expr_of_string "g")
            ~block:(Parser.expr_of_string "128")
        in
        Alcotest.(check bool) "fallback" true (kind = `Fallback);
        Alcotest.(check string) "expr" "g * 128" (Pretty.expr_to_string e));
    Alcotest.test_case "threads_expr exact passes through" `Quick (fun () ->
        let e, kind =
          Pattern.threads_expr ~parent_body:[]
            ~grid:(Parser.expr_of_string "(n + 63) / 64")
            ~block:(Parser.expr_of_string "64")
        in
        Alcotest.(check bool) "exact" true (kind = `Exact);
        Alcotest.(check string) "expr" "n" (Pretty.expr_to_string e));
    Alcotest.test_case
      "heuristic never changes correctness: N is only advisory" `Quick
      (fun () ->
        (* even a wrong N yields a valid program: check the transform output
           still typechecks when the pattern falls back *)
        let src =
          {|
__global__ void c(int* d, int n) { d[threadIdx.x] = n; }
__global__ void p(int* d, int g) { c<<<g, 32>>>(d, g); }
|}
        in
        let r =
          Pipeline.run
            ~opts:(Pipeline.make ~threshold:16 ())
            (Parser.program src)
        in
        Typecheck.check r.prog);
  ]
