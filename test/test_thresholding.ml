(* Thresholding transformation tests (paper Section III). *)

open Minicu
open Minicu.Ast
open Dpopt

let t name f = Alcotest.test_case name `Quick f

let transform ?(threshold = 32) src =
  Thresholding.transform ~opts:{ threshold } (Parser.program src)

let suite =
  [
    t "creates the serial pair next to the child" (fun () ->
        let r = transform Test_helpers.nested_src in
        let names = List.map (fun f -> f.f_name) r.prog in
        Alcotest.(check (list string)) "order"
          [ "child"; "child_serial_thread"; "child_serial"; "parent" ]
          names;
        let serial = Ast.find_func_exn r.prog "child_serial" in
        Alcotest.(check bool) "device" true (serial.f_kind = Device);
        Alcotest.(check int) "params = child + gDim + bDim" 5
          (List.length serial.f_params));
    t "serial thread body substitutes reserved variables" (fun () ->
        let r = transform Test_helpers.nested_src in
        let thread = Ast.find_func_exn r.prog "child_serial_thread" in
        let uses_reserved =
          Ast_util.fold_exprs_in_stmts
            (fun acc e ->
              acc
              ||
              match e with
              | Var x -> Ast.is_reserved_var x
              | _ -> false)
            false thread.f_body
        in
        Alcotest.(check bool) "no reserved vars left" false uses_reserved);
    t "guard compares the recovered N against the threshold" (fun () ->
        let r = transform ~threshold:77 Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        let found = ref false in
        ignore
          (Ast_util.fold_stmts
             (fun () s ->
               match s.sdesc with
               | If (Binop (Ge, Var v, Int_lit 77), _, _) ->
                   Alcotest.(check string) "guard var" "_threads" v;
                   found := true
               | _ -> ())
             () parent.f_body);
        Alcotest.(check bool) "guard present" true !found);
    t "launch config reuses _threads to avoid duplicating N" (fun () ->
        let r = transform Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        let launches = Ast_util.launches_of parent.f_body in
        match launches with
        | [ l ] ->
            Alcotest.(check bool) "grid mentions _threads" true
              (Ast_util.expr_uses_var "_threads" l.l_grid)
        | _ -> Alcotest.fail "expected one launch");
    t "report says the pattern was recovered" (fun () ->
        let r = transform Test_helpers.nested_src in
        match r.reports with
        | [ rep ] ->
            Alcotest.(check bool) "transformed" true rep.sr_transformed;
            Alcotest.(check string) "reason"
              "ceiling-division pattern recovered" rep.sr_reason
        | _ -> Alcotest.fail "expected one report");
    t "skips children with __syncthreads (Section III-C)" (fun () ->
        let src =
          {|
__global__ void child(int* d) { __syncthreads(); d[threadIdx.x] = 1; }
__global__ void parent(int* d, int n) { child<<<(n + 31) / 32, 32>>>(d); }
|}
        in
        let r = transform src in
        Alcotest.(check int) "no new funcs" 2 (List.length r.prog);
        match r.reports with
        | [ rep ] -> Alcotest.(check bool) "skipped" false rep.sr_transformed
        | _ -> Alcotest.fail "expected one report");
    t "skips children with shared memory (Section III-C)" (fun () ->
        let src =
          {|
__global__ void child(int* d) { __shared__ int b[32]; b[threadIdx.x] = 1; d[threadIdx.x] = b[threadIdx.x]; }
__global__ void parent(int* d, int n) { child<<<(n + 31) / 32, 32>>>(d); }
|}
        in
        let r = transform src in
        Alcotest.(check int) "no new funcs" 2 (List.length r.prog));
    t "skips children that sync inside called device functions" (fun () ->
        let src =
          {|
__device__ void helper(int* d) { __syncthreads(); d[0] = 1; }
__global__ void child(int* d) { helper(d); }
__global__ void parent(int* d, int n) { child<<<(n + 31) / 32, 32>>>(d); }
|}
        in
        let r = transform src in
        Alcotest.(check bool) "no serial version" false
          (List.exists (fun f -> f.f_name = "child_serial") r.prog));
    t "skips children using warp collectives" (fun () ->
        let src =
          {|
__global__ void child(int* d) { d[0] = warp_sum(1); }
__global__ void parent(int* d, int n) { child<<<(n + 31) / 32, 32>>>(d); }
|}
        in
        let r = transform src in
        Alcotest.(check bool) "no serial version" false
          (Test_helpers.has_fn
             { prog = r.prog; auto_params = []; threshold_reports = [];
               coarsen_reports = []; agg_reports = [] }
             "child_serial"));
    t "two launch sites of the same child share one serial version" (fun () ->
        let src =
          {|
__global__ void child(int* d, int n) { if (threadIdx.x < n) { d[threadIdx.x] = 1; } }
__global__ void parent(int* d, int n) {
  child<<<(n + 31) / 32, 32>>>(d, n);
  child<<<(n + 63) / 64, 64>>>(d, n);
}
|}
        in
        let r = transform src in
        let serial_count =
          List.length
            (List.filter (fun f -> f.f_name = "child_serial") r.prog)
        in
        Alcotest.(check int) "one serial fn" 1 serial_count;
        Alcotest.(check int) "two reports" 2 (List.length r.reports);
        Typecheck.check r.prog);
    t "semantics preserved at various thresholds, including extremes"
      (fun () ->
        List.iter
          (fun threshold ->
            ignore
              (Test_helpers.check_nested_variant
                 (Pipeline.make ~threshold ())))
          [ 1; 8; 32; 1000 ]);
    t "threshold beyond max serializes every launch" (fun () ->
        let _, m =
          Test_helpers.check_nested_variant (Pipeline.make ~threshold:10000 ())
        in
        Alcotest.(check int) "no device launches" 0 m.device_launches;
        Alcotest.(check bool) "everything serialized" true
          (m.serialized_launches > 0));
    t "threshold 1 keeps every launch dynamic" (fun () ->
        let _, m =
          Test_helpers.check_nested_variant (Pipeline.make ~threshold:1 ())
        in
        Alcotest.(check int) "nothing serialized" 0 m.serialized_launches);
    t "serialized child work is charged to the parent (Fig. 10)" (fun () ->
        let _, m_all =
          Test_helpers.check_nested_variant (Pipeline.make ~threshold:10000 ())
        in
        let _, m_none =
          Test_helpers.check_nested_variant (Pipeline.make ~threshold:1 ())
        in
        Alcotest.(check bool) "parent work grows" true
          (m_all.breakdown.parent_cycles > m_none.breakdown.parent_cycles);
        Alcotest.(check bool) "child work shrinks" true
          (m_all.breakdown.child_cycles < m_none.breakdown.child_cycles));
    t "multi-dimensional serial loops execute all threads" (fun () ->
        let src =
          {|
__global__ void child(int* d) {
  int i = (blockIdx.y * blockDim.y + threadIdx.y) * 8 + blockIdx.x * blockDim.x + threadIdx.x;
  d[i] = d[i] + 1;
}
__global__ void parent(int* d) {
  child<<<dim3(2, 2, 1), dim3(4, 4, 1)>>>(d);
}
|}
        in
        (* threshold high enough to force the serial path; launch config has
           no ceil-div so the fallback (grid*block = 64) is used *)
        let r =
          Pipeline.run ~opts:(Pipeline.make ~threshold:1000 ())
            (Parser.program src)
        in
        let dev = Gpusim.Device.create ~cfg:Gpusim.Config.test_config () in
        Gpusim.Device.load_program dev r.prog;
        let d = Gpusim.Device.alloc_int_zeros dev 64 in
        Gpusim.Device.launch dev ~kernel:"parent" ~grid:(1, 1, 1)
          ~block:(1, 1, 1) ~args:[ Gpusim.Value.Ptr d ];
        ignore (Gpusim.Device.sync dev);
        Alcotest.(check (array int)) "all 64 cells" (Array.make 64 1)
          (Gpusim.Device.read_ints dev d 64));
    t "transformed program pretty-prints and re-parses" (fun () ->
        let r = transform Test_helpers.nested_src in
        let printed = Pretty.program r.prog in
        let reparsed = Parser.program printed in
        Typecheck.check reparsed;
        Alcotest.(check int) "same function count" (List.length r.prog)
          (List.length reparsed));
  ]
