(* Shared helpers for the transformation tests: a standard nested-parallel
   workload whose output must be preserved by every optimization variant. *)

open Gpusim

(* The canonical test program: each parent thread increments a run of a data
   array through a child grid, with heavy-tailed run lengths. *)
let nested_src =
  {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[base + i] = data[base + i] * 2 + 1;
  }
}

__global__ void parent(int* rows, int* data, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int start = rows[v];
    int deg = rows[v + 1] - rows[v];
    if (deg > 0) {
      child<<<(deg + 31) / 32, 32>>>(data, start, deg);
    }
  }
}
|}

let to_device_auto = Benchmarks.Bench_common.to_device_auto

(* Run [prog] (typically a transformed nested_src) on the standard workload
   and return (data after run, metrics). [n] parents; parent [v] owns a run
   of length [v * (v - 1) / 2 .. ] — triangular sizes, so small and large
   child grids both occur. *)
let run_nested ?(cfg = Config.test_config) ?(n = 40)
    (r : Dpopt.Pipeline.result) =
  let dev = Device.create ~cfg () in
  Device.load_program dev r.prog ~auto_params:(to_device_auto r.auto_params);
  let rows = Array.init (n + 1) (fun i -> i * (i - 1) / 2) in
  let total = rows.(n) in
  let data = Array.init total (fun i -> i) in
  let d_rows = Device.alloc_ints dev rows in
  let d_data = Device.alloc_ints dev data in
  Device.launch dev ~kernel:"parent"
    ~grid:((n + 31) / 32, 1, 1)
    ~block:(32, 1, 1)
    ~args:[ Value.Ptr d_rows; Value.Ptr d_data; Value.Int n ];
  ignore (Device.sync dev);
  (Device.read_ints dev d_data total, Device.metrics dev)

let expected_nested ?(n = 40) () =
  let rows = Array.init (n + 1) (fun i -> i * (i - 1) / 2) in
  Array.init rows.(n) (fun i -> (i * 2) + 1)

(* Transform nested_src with [opts], run it, and check the output. Returns
   metrics for further assertions. *)
let check_nested_variant ?cfg ?n (opts : Dpopt.Pipeline.options) =
  let r = Dpopt.Pipeline.run ~opts (Minicu.Parser.program nested_src) in
  let got, metrics = run_nested ?cfg ?n r in
  Alcotest.(check (array int)) "output preserved" (expected_nested ?n ()) got;
  (r, metrics)

(* Find a function in a transformed program. *)
let fn (r : Dpopt.Pipeline.result) name = Minicu.Ast.find_func_exn r.prog name

let has_fn (r : Dpopt.Pipeline.result) name =
  Minicu.Ast.find_func r.prog name <> None
