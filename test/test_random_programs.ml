(* Property-based end-to-end check, now built on the reusable
   differential-testing subsystem (lib/difftest): random child-kernel
   bodies, random ceiling-division launch idioms, random workloads — every
   optimization combination must preserve device memory bit-for-bit and
   keep the launch metrics consistent. This is the strongest correctness
   statement in the suite: the passes are tested against programs nobody
   hand-picked. A failure prints the generative seed (replayable with
   [dpfuzz --seed N --iters 1]) and a structurally shrunk reproducer. *)

open Difftest

(* One simulator configuration keeps the property affordable under
   `dune runtest`; the @fuzz alias and dpfuzz CLI cover the full
   configuration matrix with a larger budget. *)
let unit_config = [ List.hd Oracle.sim_configs ]

let prop =
  QCheck.Test.make ~count:40
    ~name:
      "random nested programs: all pass combinations produce identical \
       memory and consistent launch metrics"
    (QCheck.make ~print:Gen.print_case ~shrink:Shrink.qcheck_shrink
       Gen.gen_case)
    (fun case ->
      match Oracle.check ~configs:unit_config case with
      | Pass -> true
      | Invalid msg ->
          if case.Gen.seed >= 0 then
            (* the generator itself must only produce valid programs *)
            QCheck.Test.fail_reportf "seed %d: invalid generated case: %s"
              case.Gen.seed msg
          else
            (* an over-aggressive shrink step broke validity: reject the
               candidate so QCheck keeps the last valid failing case *)
            true
      | Fail f ->
          let replay =
            if case.Gen.seed >= 0 then
              Fmt.str "@.(replay: dune exec bin/dpfuzz.exe -- --seed %d \
                       --iters 1)" case.Gen.seed
            else ""
          in
          QCheck.Test.fail_reportf "%a%s" Oracle.pp_failure f replay)

let suite = [ QCheck_alcotest.to_alcotest prop ]
