(* Property-based end-to-end check: random child-kernel bodies, random
   ceiling-division launch idioms, random workloads — every optimization
   combination must preserve the output exactly. This is the strongest
   correctness statement in the suite: the passes are tested against
   programs nobody hand-picked. *)

open Minicu
open Minicu.Ast

(* ---- random child-body generator ----------------------------------- *)

(* Integer expressions over the in-scope names [i] (thread's element
   index), [k] (scalar parameter), and [data[base + i]]. Division-free, so
   no divide-by-zero; multiplication kept shallow to avoid overflow
   mattering (OCaml ints don't trap anyway). *)
let gen_ibody_expr =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n = 0 then
              oneof
                [
                  map (fun c -> Int_lit (c mod 7)) small_int;
                  return (Var "i");
                  return (Var "k");
                  return (Index (Var "data", Binop (Add, Var "base", Var "i")));
                ]
            else
              let sub = self (n / 2) in
              oneof
                [
                  map2 (fun a b -> Binop (Add, a, b)) sub sub;
                  map2 (fun a b -> Binop (Sub, a, b)) sub sub;
                  map2 (fun a b -> Call ("min", [ a; b ])) sub sub;
                  map2 (fun a b -> Call ("max", [ a; b ])) sub sub;
                  map2 (fun a b -> Binop (Mul, a, Binop (Mod, b, Int_lit 5))) sub sub;
                  map3
                    (fun c a b -> Ternary (Binop (Lt, c, Int_lit 3), a, b))
                    sub sub sub;
                ])
          (min n 6)))

(* A child body: a couple of updates to this thread's element plus a
   commutative accumulator update (safe under any interleaving). *)
let gen_child_work =
  QCheck.Gen.(
    let cell = Index (Var "data", Binop (Add, Var "base", Var "i")) in
    let* e1 = gen_ibody_expr in
    let* e2 = gen_ibody_expr in
    let* use_loop = bool in
    let* acc_e = gen_ibody_expr in
    let updates =
      if use_loop then
        [
          stmt
            (For
               ( Some (stmt (Decl (TInt, "r", Some (Int_lit 0)))),
                 Some (Binop (Lt, Var "r", Int_lit 3)),
                 Some (stmt (Assign (Var "r", Binop (Add, Var "r", Int_lit 1)))),
                 [ stmt (Assign (cell, Binop (Add, cell, e1))) ] ));
          stmt (Assign (cell, Binop (Add, cell, e2)));
        ]
      else
        [
          stmt (Assign (cell, e1));
          stmt (Assign (cell, Binop (Add, cell, e2)));
        ]
    in
    return
      (updates
      @ [
          stmt
            (Expr_stmt
               (Call
                  ( "atomicAdd",
                    [
                      Addr_of (Index (Var "acc", Binop (Mod, Var "i", Int_lit 4)));
                      Binop (Mod, acc_e, Int_lit 1000);
                    ] )));
        ]))

(* The Fig. 4 ceiling-division idioms, chosen at random. *)
let grid_idioms b =
  [
    Binop (Add, Binop (Div, Binop (Sub, Var "deg", Int_lit 1), Int_lit b), Int_lit 1);
    Binop (Div, Binop (Add, Var "deg", Int_lit (b - 1)), Int_lit b);
    Binop
      ( Add,
        Binop (Div, Var "deg", Int_lit b),
        Ternary
          ( Binop (Eq, Binop (Mod, Var "deg", Int_lit b), Int_lit 0),
            Int_lit 0,
            Int_lit 1 ) );
    Cast
      ( TInt,
        Call ("ceil", [ Binop (Div, Cast (TFloat, Var "deg"), Int_lit b) ]) );
  ]

let build_program ~child_work ~block ~idiom : program =
  let child =
    {
      f_name = "child";
      f_kind = Global;
      f_ret = TVoid;
      f_params =
        [
          { p_ty = TPtr TInt; p_name = "data" };
          { p_ty = TPtr TInt; p_name = "acc" };
          { p_ty = TInt; p_name = "base" };
          { p_ty = TInt; p_name = "n" };
          { p_ty = TInt; p_name = "k" };
        ];
      f_body =
        [
          stmt
            (Decl
               ( TInt,
                 "i",
                 Some
                   (Binop
                      ( Add,
                        Binop
                          ( Mul,
                            Member (Var "blockIdx", "x"),
                            Member (Var "blockDim", "x") ),
                        Member (Var "threadIdx", "x") )) ));
          stmt (If (Binop (Lt, Var "i", Var "n"), child_work, []));
        ];
      f_host_followup = None;
    }
  in
  let grid = List.nth (grid_idioms block) idiom in
  let parent =
    {
      f_name = "parent";
      f_kind = Global;
      f_ret = TVoid;
      f_params =
        [
          { p_ty = TPtr TInt; p_name = "rows" };
          { p_ty = TPtr TInt; p_name = "data" };
          { p_ty = TPtr TInt; p_name = "acc" };
          { p_ty = TInt; p_name = "nv" };
        ];
      f_body =
        [
          stmt
            (Decl
               ( TInt,
                 "v",
                 Some
                   (Binop
                      ( Add,
                        Binop
                          ( Mul,
                            Member (Var "blockIdx", "x"),
                            Member (Var "blockDim", "x") ),
                        Member (Var "threadIdx", "x") )) ));
          stmt
            (If
               ( Binop (Lt, Var "v", Var "nv"),
                 [
                   stmt (Decl (TInt, "start", Some (Index (Var "rows", Var "v"))));
                   stmt
                     (Decl
                        ( TInt,
                          "deg",
                          Some
                            (Binop
                               ( Sub,
                                 Index (Var "rows", Binop (Add, Var "v", Int_lit 1)),
                                 Var "start" )) ));
                   stmt
                     (If
                        ( Binop (Gt, Var "deg", Int_lit 0),
                          [
                            stmt
                              (Launch
                                 {
                                   l_kernel = "child";
                                   l_grid = grid;
                                   l_block = Int_lit block;
                                   l_args =
                                     [
                                       Var "data"; Var "acc"; Var "start";
                                       Var "deg"; Var "v";
                                     ];
                                 });
                          ],
                          [] ));
                 ],
                 [] ));
        ];
      f_host_followup = None;
    }
  in
  [ child; parent ]

let option_sets =
  [
    Dpopt.Pipeline.none;
    Dpopt.Pipeline.make ~threshold:9 ();
    Dpopt.Pipeline.make ~cfactor:3 ();
    Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Warp ();
    Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Block ();
    Dpopt.Pipeline.make ~granularity:(Dpopt.Aggregation.Multi_block 2) ();
    Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Grid ();
    Dpopt.Pipeline.make ~threshold:9 ~cfactor:2
      ~granularity:(Dpopt.Aggregation.Multi_block 3) ();
    Dpopt.Pipeline.make ~threshold:17 ~cfactor:4
      ~granularity:Dpopt.Aggregation.Grid ();
    Dpopt.Pipeline.make ~threshold:5 ~granularity:Dpopt.Aggregation.Block
      ~agg_threshold:3 ();
  ]

let run_once prog opts degs =
  let r = Dpopt.Pipeline.run ~opts prog in
  let dev = Gpusim.Device.create ~cfg:Gpusim.Config.test_config () in
  Gpusim.Device.load_program dev r.prog
    ~auto_params:(Benchmarks.Bench_common.to_device_auto r.auto_params);
  let nv = Array.length degs in
  let rows = Array.make (nv + 1) 0 in
  Array.iteri (fun i d -> rows.(i + 1) <- rows.(i) + d) degs;
  let total = max rows.(nv) 1 in
  let d_rows = Gpusim.Device.alloc_ints dev rows in
  let d_data = Gpusim.Device.alloc_ints dev (Array.init total (fun i -> i mod 11)) in
  let d_acc = Gpusim.Device.alloc_int_zeros dev 4 in
  Gpusim.Device.launch dev ~kernel:"parent"
    ~grid:((nv + 31) / 32, 1, 1)
    ~block:(32, 1, 1)
    ~args:[ Ptr d_rows; Ptr d_data; Ptr d_acc; Int nv ];
  ignore (Gpusim.Device.sync dev);
  (Gpusim.Device.read_ints dev d_data total, Gpusim.Device.read_ints dev d_acc 4)

let gen_case =
  QCheck.Gen.(
    let* child_work = gen_child_work in
    let* block = oneofl [ 8; 16; 32 ] in
    let* idiom = int_bound 3 in
    let* degs = array_size (int_range 1 20) (int_bound 40) in
    return (child_work, block, idiom, degs))

let print_case (child_work, block, idiom, degs) =
  Fmt.str "block=%d idiom=%d degs=%a@.%s" block idiom
    Fmt.(Dump.array int)
    degs
    (Pretty.program (build_program ~child_work ~block ~idiom))

let prop =
  QCheck.Test.make ~count:60
    ~name:
      "random nested programs: all option sets produce identical outputs"
    (QCheck.make ~print:print_case gen_case)
    (fun (child_work, block, idiom, degs) ->
      let prog = build_program ~child_work ~block ~idiom in
      Typecheck.check prog;
      (* also: the program survives a print/parse round trip *)
      let prog = Parser.program (Pretty.program prog) in
      let reference = run_once prog Dpopt.Pipeline.none degs in
      List.for_all
        (fun opts ->
          let got = run_once prog opts degs in
          if got <> reference then
            QCheck.Test.fail_reportf "mismatch under %s"
              (Dpopt.Pipeline.label opts)
          else true)
        option_sets)

let suite = [ QCheck_alcotest.to_alcotest prop ]
