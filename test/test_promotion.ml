(* Promotion pass tests (KLAP's optimization for self-recursive
   single-block kernels, paper Section IX). *)

open Minicu
open Minicu.Ast
open Dpopt

let t name f = Alcotest.test_case name `Quick f

(* Recursive pairwise folding: each level halves the active range. *)
let fold_src =
  {|
__global__ void fold(int* data, int n) {
  int half = n / 2;
  int i = threadIdx.x;
  while (i < half) {
    data[i] = data[i] + data[i + half];
    i = i + blockDim.x;
  }
  if (threadIdx.x == 0) {
    if (half > 1) {
      fold<<<1, blockDim.x>>>(data, half);
    }
  }
}
|}

let run_fold prog n =
  let dev = Gpusim.Device.create ~cfg:Gpusim.Config.test_config () in
  Gpusim.Device.load_program dev prog;
  let d = Gpusim.Device.alloc_ints dev (Array.init n (fun i -> i + 1)) in
  Gpusim.Device.launch dev ~kernel:"fold" ~grid:(1, 1, 1) ~block:(32, 1, 1)
    ~args:[ Gpusim.Value.Ptr d; Gpusim.Value.Int n ];
  ignore (Gpusim.Device.sync dev);
  ((Gpusim.Device.read_ints dev d 1).(0), Gpusim.Device.metrics dev)

let suite =
  [
    t "promotes the recursive kernel" (fun () ->
        let r = Promotion.transform (Parser.program fold_src) in
        Alcotest.(check int) "two functions" 2 (List.length r.prog);
        let k = Ast.find_func_exn r.prog "fold" in
        Alcotest.(check bool) "launch gone" false
          (Ast_util.contains_launch k.f_body);
        Alcotest.(check bool) "body extracted" true
          (Ast.find_func r.prog "fold_level_body" <> None);
        match r.reports with
        | [ rep ] -> Alcotest.(check bool) "transformed" true rep.sr_transformed
        | _ -> Alcotest.fail "expected one report");
    t "promoted kernel computes the same result" (fun () ->
        let plain = Parser.program fold_src in
        let promoted = (Promotion.transform plain).prog in
        Typecheck.check promoted;
        List.iter
          (fun n ->
            let expect, _ = run_fold plain n in
            let got, _ = run_fold promoted n in
            Alcotest.(check int) (Fmt.str "sum for n=%d" n) expect got)
          [ 2; 8; 64; 256 ]);
    t "promotion eliminates all device launches" (fun () ->
        let plain = Parser.program fold_src in
        let promoted = (Promotion.transform plain).prog in
        let _, m_plain = run_fold plain 256 in
        let _, m_prom = run_fold promoted 256 in
        Alcotest.(check bool) "recursion launched grids" true
          (m_plain.device_launches >= 6);
        Alcotest.(check int) "promotion launches none" 0
          m_prom.device_launches);
    t "promotion is faster under launch congestion" (fun () ->
        let cfg =
          { Gpusim.Config.default with launch_service_interval = 2000 }
        in
        let run prog =
          let dev = Gpusim.Device.create ~cfg () in
          Gpusim.Device.load_program dev prog;
          let d = Gpusim.Device.alloc_ints dev (Array.init 512 (fun i -> i)) in
          Gpusim.Device.launch dev ~kernel:"fold" ~grid:(1, 1, 1)
            ~block:(64, 1, 1)
            ~args:[ Gpusim.Value.Ptr d; Gpusim.Value.Int 512 ];
          Gpusim.Device.sync dev
        in
        let t_plain = run (Parser.program fold_src) in
        let t_prom = run (Promotion.transform (Parser.program fold_src)).prog in
        Alcotest.(check bool) "promoted faster" true (t_prom < t_plain));
    t "rejects multi-block self-launch" (fun () ->
        let src =
          {|
__global__ void k(int* d, int n) {
  if (threadIdx.x == 0 && n > 1) {
    k<<<2, blockDim.x>>>(d, n / 2);
  }
}
|}
        in
        let r = Promotion.transform (Parser.program src) in
        Alcotest.(check bool) "not promoted" false
          (List.hd r.reports).sr_transformed);
    t "rejects unstable block dimension" (fun () ->
        let src =
          {|
__global__ void k(int* d, int n) {
  if (threadIdx.x == 0 && n > 1) {
    k<<<1, n>>>(d, n / 2);
  }
}
|}
        in
        let r = Promotion.transform (Parser.program src) in
        Alcotest.(check bool) "not promoted" false
          (List.hd r.reports).sr_transformed);
    t "rejects launch of a different kernel" (fun () ->
        let src =
          {|
__global__ void other(int* d) { d[0] = 1; }
__global__ void k(int* d, int n) {
  if (threadIdx.x == 0 && n > 1) {
    other<<<1, 32>>>(d);
  }
}
|}
        in
        let r = Promotion.transform (Parser.program src) in
        (* a kernel launching a different kernel is not a promotion
           candidate at all: no report, program unchanged *)
        Alcotest.(check int) "no reports" 0 (List.length r.reports);
        Alcotest.(check int) "program unchanged" 2 (List.length r.prog));
    t "rejects self-launch inside a loop" (fun () ->
        let src =
          {|
__global__ void k(int* d, int n) {
  for (int i = 0; i < n; i++) {
    if (threadIdx.x == 0) { k<<<1, blockDim.x>>>(d, n - 1); }
  }
}
|}
        in
        let r = Promotion.transform (Parser.program src) in
        Alcotest.(check bool) "not promoted" false
          (List.hd r.reports).sr_transformed);
    t "promoted program round-trips through the printer" (fun () ->
        let r = Promotion.transform (Parser.program fold_src) in
        Typecheck.check (Parser.program (Pretty.program r.prog)));
  ]
