(* Autotuner, CSV export, and ablation tests. *)

let t name f = Alcotest.test_case name `Quick f

let tiny_spec () =
  Benchmarks.Bfs.spec ~dataset:(Workloads.Graph_gen.kron_dataset ~scale:7 ())

let tca = { Harness.Variant.t = true; c = true; a = true }

let suite =
  [
    t "normalize: ignored knobs cannot split the memo" (fun () ->
        (* Two differently-constructed but semantically equal params: at
           grid granularity the aggregation codegen never reads
           agg_threshold, and with T and C disabled their knobs are
           irrelevant too — both points denote the same experiment. *)
        let a_only = { Harness.Variant.t = false; c = false; a = true } in
        let p1 =
          {
            Harness.Variant.threshold = 77;
            cfactor = 9;
            granularity = Dpopt.Aggregation.Grid;
            agg_threshold = Some 4;
          }
        in
        let p2 =
          {
            Harness.Variant.default_params with
            granularity = Dpopt.Aggregation.Grid;
          }
        in
        Alcotest.(check bool) "distinct as constructed" true (p1 <> p2);
        Alcotest.(check bool) "equal after normalize" true
          (Harness.Autotune.normalize a_only p1
          = Harness.Autotune.normalize a_only p2);
        (* ... and the instantiated pipelines agree, fingerprint included *)
        let opts p =
          match Harness.Variant.instantiate a_only p with
          | Harness.Variant.Cdp o -> o
          | Harness.Variant.No_cdp -> Alcotest.fail "expected a CDP variant"
        in
        Alcotest.(check string) "one pipeline fingerprint"
          (Dpopt.Pipeline.fingerprint (opts p1))
          (Dpopt.Pipeline.fingerprint (opts p2));
        (* negative control: warp granularity does consume agg_threshold *)
        let warp th =
          Harness.Autotune.normalize a_only
            {
              p1 with
              granularity = Dpopt.Aggregation.Warp;
              agg_threshold = th;
            }
        in
        Alcotest.(check bool) "warp keeps the knob" true
          (warp (Some 4) <> warp None));
    Alcotest.test_case "autotuner respects its budget" `Slow (fun () ->
        let spec = tiny_spec () in
        let o = Harness.Autotune.search ~budget:8 spec tca in
        Alcotest.(check bool) "within budget" true (o.runs_used <= 8);
        Alcotest.(check int) "trace length = runs" o.runs_used
          (List.length o.trace));
    Alcotest.test_case "autotuner best is the min of its trace" `Slow
      (fun () ->
        let spec = tiny_spec () in
        let o = Harness.Autotune.search ~budget:10 spec tca in
        List.iter
          (fun (_, time) ->
            Alcotest.(check bool) "best <= every run" true
              (o.best_time <= time))
          o.trace);
    Alcotest.test_case "autotuner is deterministic for a seed" `Slow (fun () ->
        let spec = tiny_spec () in
        let a = Harness.Autotune.search ~budget:8 ~seed:5 spec tca in
        let b = Harness.Autotune.search ~budget:8 ~seed:5 spec tca in
        Alcotest.(check (float 0.0)) "same best" a.best_time b.best_time);
    Alcotest.test_case "autotuner lands near the exhaustive best" `Slow
      (fun () ->
        (* Section VIII-C: 'users can typically find a combination very
           close to the best with less than ten runs' *)
        let spec = tiny_spec () in
        let exhaustive = Harness.Tuning.tune ~quick:false spec tca in
        let auto = Harness.Autotune.search ~budget:10 spec tca in
        Alcotest.(check bool)
          (Fmt.str "within 40%% of exhaustive (%.0f vs %.0f)" auto.best_time
             exhaustive.best.time)
          true
          (auto.best_time <= exhaustive.best.Harness.Experiment.time *. 1.4));
    t "csv escaping" (fun () ->
        Alcotest.(check string) "plain" "abc" (Harness.Csv.escape "abc");
        Alcotest.(check string) "comma" "\"a,b\"" (Harness.Csv.escape "a,b");
        Alcotest.(check string) "quote" "\"a\"\"b\"" (Harness.Csv.escape "a\"b"));
    t "csv files have the right shape" (fun () ->
        let path = Filename.temp_file "dpopt" ".csv" in
        Harness.Csv.write_rows path ~header:[ "a"; "b" ]
          [ [ "1"; "x,y" ]; [ "2"; "z" ] ];
        let lines =
          In_channel.with_open_text path In_channel.input_lines
        in
        Sys.remove path;
        Alcotest.(check (list string)) "contents"
          [ "a,b"; "1,\"x,y\""; "2,z" ]
          lines);
    Alcotest.test_case "ablation: congestion knob widens the CDP gap" `Slow
      (fun () ->
        let s = Harness.Ablation.congestion ~intervals:[ 0; 1000 ] () in
        match s.rows with
        | [ low; high ] ->
            let ratio r = List.assoc "CDP/CDP+A" r.Harness.Ablation.values in
            Alcotest.(check bool) "gap grows" true (ratio high > ratio low *. 2.0)
        | _ -> Alcotest.fail "expected two rows");
    Alcotest.test_case "ablation: launch-existence knob moves the residual"
      `Slow (fun () ->
        let s = Harness.Ablation.launch_existence ~costs:[ 0; 256 ] () in
        match s.rows with
        | [ low; high ] ->
            let gap r = List.assoc "residual gap" r.Harness.Ablation.values in
            Alcotest.(check bool) "residual tracks the knob" true
              (gap high > gap low)
        | _ -> Alcotest.fail "expected two rows");
  ]
