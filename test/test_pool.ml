(* Harness.Pool: result determinism across parallelism levels, the
   lowest-failing-index exception contract, and pool lifecycle. *)

let t name f = Alcotest.test_case name `Quick f

exception Boom of int

let suite =
  [
    t "map results are in submission order at any parallelism" (fun () ->
        (* a spread of job costs so completion order differs from
           submission order under parallelism *)
        let work i =
          let rounds = 1000 * (1 + ((17 - i) mod 7)) in
          let acc = ref i in
          for k = 1 to rounds do
            acc := (!acc * 31) + k
          done;
          (i, !acc)
        in
        let expect = List.init 17 work in
        List.iter
          (fun jobs ->
            Harness.Pool.with_pool ~jobs (fun pool ->
                Alcotest.(check (list (pair int int)))
                  (Printf.sprintf "jobs=%d" jobs)
                  expect
                  (Harness.Pool.map_list pool work (List.init 17 Fun.id))))
          [ 1; 2; 3; 4 ]);
    t "run returns an array indexed by job" (fun () ->
        Harness.Pool.with_pool ~jobs:3 (fun pool ->
            Alcotest.(check (array int)) "squares"
              (Array.init 50 (fun i -> i * i))
              (Harness.Pool.run pool (fun i -> i * i) 50)));
    t "more jobs than work is fine" (fun () ->
        Harness.Pool.with_pool ~jobs:4 (fun pool ->
            Alcotest.(check (list int)) "tiny batch" [ 0; 2 ]
              (Harness.Pool.map_list pool (fun x -> 2 * x) [ 0; 1 ]);
            Alcotest.(check (list int)) "empty batch" []
              (Harness.Pool.map_list pool Fun.id [])));
    t "lowest failing index wins, at any parallelism" (fun () ->
        List.iter
          (fun jobs ->
            Harness.Pool.with_pool ~jobs (fun pool ->
                match
                  Harness.Pool.run pool
                    (fun i -> if i mod 5 = 3 then raise (Boom i) else i)
                    32
                with
                | (_ : int array) -> Alcotest.fail "expected Boom"
                | exception Boom i ->
                    Alcotest.(check int)
                      (Printf.sprintf "jobs=%d" jobs)
                      3 i))
          [ 1; 2; 4 ]);
    t "a pool survives a failing batch" (fun () ->
        Harness.Pool.with_pool ~jobs:2 (fun pool ->
            (match Harness.Pool.run pool (fun _ -> failwith "x") 4 with
            | (_ : unit array) -> Alcotest.fail "expected Failure"
            | exception Failure _ -> ());
            Alcotest.(check (array int)) "next batch runs" [| 0; 1; 2 |]
              (Harness.Pool.run pool Fun.id 3)));
    t "jobs below 1 are clamped" (fun () ->
        Harness.Pool.with_pool ~jobs:0 (fun pool ->
            Alcotest.(check int) "clamped" 1 (Harness.Pool.jobs pool));
        Alcotest.(check bool) "default is positive" true
          (Harness.Pool.default_jobs () >= 1));
    t "shutdown is idempotent" (fun () ->
        let pool = Harness.Pool.create ~jobs:2 () in
        Alcotest.(check (array int)) "works" [| 0; 1 |]
          (Harness.Pool.run pool Fun.id 2);
        Harness.Pool.shutdown pool;
        Harness.Pool.shutdown pool);
  ]
