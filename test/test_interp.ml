(* Interpreter semantics tests: expressions, control flow, atomics,
   barriers, warp collectives, shared memory, device malloc, launches. Each
   test runs a small kernel on the simulated device and inspects memory. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

(* Run [src]'s kernel [kernel] with one int output buffer of [out_n]
   elements passed as the first argument, plus [extra] args. *)
let run_kernel ?(grid = (1, 1, 1)) ?(block = (1, 1, 1)) ?(out_n = 8)
    ?(extra = []) ~kernel src =
  let dev = Device.create ~cfg:Config.test_config () in
  Device.load_program dev (Minicu.Parser.program src);
  let out = Device.alloc_int_zeros dev out_n in
  Device.launch dev ~kernel ~grid ~block ~args:(Value.Ptr out :: extra);
  ignore (Device.sync dev);
  Device.read_ints dev out out_n

let check_out name ?grid ?block ?out_n ?extra ~kernel src expected =
  t name (fun () ->
      let got = run_kernel ?grid ?block ?out_n ?extra ~kernel src in
      Alcotest.(check (array int)) name expected got)

let run_fails name ?grid ?block ?out_n ?extra ~kernel src =
  t name (fun () ->
      match run_kernel ?grid ?block ?out_n ?extra ~kernel src with
      | _ -> Alcotest.fail "expected a runtime error"
      | exception Value.Runtime_error _ -> ())

let suite =
  [
    check_out "arithmetic and precedence" ~kernel:"k"
      "__global__ void k(int* o) { o[0] = 2 + 3 * 4; o[1] = (2 + 3) * 4; o[2] \
       = 7 / 2; o[3] = 7 % 3; o[4] = -5 + 1; o[5] = 1 << 4; o[6] = 19 >> 2; \
       o[7] = 5 & 3; }"
      [| 14; 20; 3; 1; -4; 16; 4; 1 |];
    check_out "comparisons and logic" ~kernel:"k"
      "__global__ void k(int* o) { o[0] = (int)(3 < 4); o[1] = (int)(4 <= 3); \
       o[2] = (int)(3 == 3 && 4 != 4); o[3] = (int)(false || true); o[4] = \
       (int)!false; o[5] = 3 > 2 ? 10 : 20; }"
      ~out_n:6 [| 1; 0; 0; 1; 1; 10 |];
    check_out "float to int casts truncate" ~kernel:"k"
      "__global__ void k(int* o) { o[0] = (int)3.7; o[1] = (int)(7.0 / 2.0); \
       o[2] = (int)ceil(7.0 / 2.0); o[3] = (int)floor(3.9); o[4] = \
       (int)sqrt(49.0); }"
      ~out_n:5 [| 3; 3; 4; 3; 7 |];
    check_out "builtins min max abs" ~kernel:"k"
      "__global__ void k(int* o) { o[0] = min(3, 7); o[1] = max(3, 7); o[2] = \
       abs(-4); o[3] = (int)fabs(-2.5); o[4] = (int)pow(2.0, 10.0); }"
      ~out_n:5 [| 3; 7; 4; 2; 1024 |];
    check_out "thread and block indices" ~kernel:"k" ~grid:(2, 1, 1)
      ~block:(4, 1, 1)
      "__global__ void k(int* o) { int i = blockIdx.x * blockDim.x + \
       threadIdx.x; o[i] = i * 10 + gridDim.x; }"
      [| 2; 12; 22; 32; 42; 52; 62; 72 |];
    check_out "multi-dimensional indices" ~kernel:"k" ~block:(2, 2, 2)
      "__global__ void k(int* o) { int i = threadIdx.z * 4 + threadIdx.y * 2 \
       + threadIdx.x; o[i] = 100 + i; }"
      [| 100; 101; 102; 103; 104; 105; 106; 107 |];
    check_out "for loop with break/continue" ~kernel:"k"
      "__global__ void k(int* o) { int s = 0; for (int i = 0; i < 100; i++) { \
       if (i % 2 == 1) { continue; } if (i >= 10) { break; } s = s + i; } \
       o[0] = s; }"
      ~out_n:1 [| 20 |];
    check_out "while loop" ~kernel:"k"
      "__global__ void k(int* o) { int x = 1; while (x < 100) { x = x * 3; } \
       o[0] = x; }"
      ~out_n:1 [| 243 |];
    check_out "nested loops with shadowing" ~kernel:"k"
      "__global__ void k(int* o) { int s = 0; for (int i = 0; i < 3; i++) { \
       for (int j = 0; j < 3; j++) { int i = j * 10; s = s + i; } } o[0] = s; \
       }"
      ~out_n:1 [| 90 |];
    check_out "device function call and return" ~kernel:"k"
      "__device__ int fib(int n) { if (n < 2) { return n; } return fib(n - 1) \
       + fib(n - 2); } __global__ void k(int* o) { o[0] = fib(10); }"
      ~out_n:1 [| 55 |];
    check_out "early return skips the rest" ~kernel:"k" ~block:(4, 1, 1)
      "__global__ void k(int* o) { int i = threadIdx.x; if (i > 1) { return; \
       } o[i] = 1; }"
      ~out_n:4 [| 1; 1; 0; 0 |];
    check_out "pointer arithmetic" ~kernel:"k"
      "__global__ void k(int* o) { int* q = o + 2; q[0] = 5; q[1] = 6; int* r \
       = q - 1; r[0] = 4; o[5] = (int)(q == o + 2); }"
      ~out_n:6 [| 0; 4; 5; 6; 0; 1 |];
    check_out "atomicAdd returns distinct old values" ~kernel:"k"
      ~block:(8, 1, 1)
      "__global__ void k(int* o) { int old = atomicAdd(&o[0], 1); o[1 + old] \
       = 1; }"
      ~out_n:9 [| 8; 1; 1; 1; 1; 1; 1; 1; 1 |];
    check_out "atomicMin / atomicMax / atomicExch / atomicSub" ~kernel:"k"
      "__global__ void k(int* o) { o[0] = 100; atomicMin(&o[0], 42); \
       atomicMax(&o[1], 17); atomicExch(&o[2], 9); atomicSub(&o[3], 5); }"
      ~out_n:4 [| 42; 17; 9; -5 |];
    check_out "atomicCAS success and failure" ~kernel:"k"
      "__global__ void k(int* o) { o[0] = 5; int a = atomicCAS(&o[0], 5, 7); \
       int b = atomicCAS(&o[0], 5, 9); o[1] = a; o[2] = b; }"
      ~out_n:3 [| 7; 5; 7 |];
    check_out "syncthreads orders phases" ~kernel:"k" ~block:(8, 1, 1)
      "__global__ void k(int* o) { o[threadIdx.x] = threadIdx.x; \
       __syncthreads(); int next = (threadIdx.x + 1) % 8; int v = o[next]; \
       __syncthreads(); o[threadIdx.x] = v; }"
      [| 1; 2; 3; 4; 5; 6; 7; 0 |];
    check_out "shared memory reduction" ~kernel:"k" ~block:(16, 1, 1)
      "__global__ void k(int* o) { __shared__ int b[16]; b[threadIdx.x] = \
       threadIdx.x; __syncthreads(); int s = 8; while (s > 0) { if \
       (threadIdx.x < s) { b[threadIdx.x] = b[threadIdx.x] + b[threadIdx.x + \
       s]; } __syncthreads(); s = s / 2; } if (threadIdx.x == 0) { o[0] = \
       b[0]; } }"
      ~out_n:1 [| 120 |];
    check_out "shared memory is per block" ~kernel:"k" ~grid:(2, 1, 1)
      ~block:(2, 1, 1)
      "__global__ void k(int* o) { __shared__ int b[2]; b[threadIdx.x] = \
       blockIdx.x * 10 + threadIdx.x; __syncthreads(); o[blockIdx.x * 2 + \
       threadIdx.x] = b[threadIdx.x]; }"
      ~out_n:4 [| 0; 1; 10; 11 |];
    check_out "warp collectives" ~kernel:"k" ~block:(32, 1, 1)
      "__global__ void k(int* o) { int lane = threadIdx.x; int s = \
       warp_scan_excl(1); int tot = warp_sum(lane); int mx = warp_max(lane); \
       int b = warp_bcast(lane * 2, 3); if (lane == 5) { o[0] = s; o[1] = \
       tot; o[2] = mx; o[3] = b; } }"
      ~out_n:4 [| 5; 496; 31; 6 |];
    check_out "warp collectives skip exited lanes" ~kernel:"k"
      ~block:(32, 1, 1)
      "__global__ void k(int* o) { if (threadIdx.x >= 16) { return; } int c = \
       warp_sum(1); if (threadIdx.x == 0) { o[0] = c; } }"
      ~out_n:1 [| 16 |];
    check_out "device malloc" ~kernel:"k"
      "__global__ void k(int* o) { int* buf = (int*)malloc(4); buf[0] = 11; \
       buf[3] = 44; o[0] = buf[0]; o[1] = buf[3]; }"
      ~out_n:2 [| 11; 44 |];
    check_out "dynamic launch propagates values" ~kernel:"p"
      "__global__ void c(int* o, int v) { o[threadIdx.x] = v + threadIdx.x; } \
       __global__ void p(int* o) { c<<<1, 4>>>(o, 100); }"
      ~out_n:4 [| 100; 101; 102; 103 |];
    check_out "nested dynamic launches (grandchildren)" ~kernel:"p"
      "__global__ void gc(int* o, int base) { o[base + threadIdx.x] = 7; } \
       __global__ void c(int* o) { gc<<<1, 2>>>(o, threadIdx.x * 2); } \
       __global__ void p(int* o) { c<<<1, 2>>>(o); }"
      ~out_n:4 [| 7; 7; 7; 7 |];
    check_out "dim3 variables and member assignment" ~kernel:"k"
      "__global__ void k(int* o) { dim3 d = dim3(4, 5, 6); d.x = 7; o[0] = \
       d.x; o[1] = d.y; o[2] = d.z; int n = 9; dim3 e = n; o[3] = e.x; o[4] = \
       e.y; }"
      ~out_n:5 [| 7; 5; 6; 9; 1 |];
    check_out "uninitialized dim3 member assignment defaults" ~kernel:"k"
      "__global__ void k(int* o) { dim3 d; d.x = 3; o[0] = d.x; o[1] = d.y; }"
      ~out_n:2 [| 3; 1 |];
    t "floats in memory" (fun () ->
        let dev = Device.create ~cfg:Config.test_config () in
        Device.load_program dev
          (Minicu.Parser.program
             "__global__ void k(int* o, float* f) { f[0] = 1.5; f[1] = f[0] \
              * 2.0; o[0] = (int)(f[1] * 10.0); }");
        let out = Device.alloc_int_zeros dev 1 in
        let fbuf = Device.alloc_float_zeros dev 2 in
        Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(1, 1, 1)
          ~args:[ Value.Ptr out; Value.Ptr fbuf ];
        ignore (Device.sync dev);
        Alcotest.(check (array int)) "result" [| 30 |]
          (Device.read_ints dev out 1);
        Alcotest.(check (array (float 0.0))) "floats" [| 1.5; 3.0 |]
          (Device.read_floats dev fbuf 2));
    run_fails "out-of-bounds store caught" ~kernel:"k"
      "__global__ void k(int* o) { o[100] = 1; }";
    run_fails "division by zero" ~kernel:"k"
      "__global__ void k(int* o) { int z = 0; o[0] = 5 / z; }";
    run_fails "modulo by zero" ~kernel:"k"
      "__global__ void k(int* o) { int z = 0; o[0] = 5 % z; }";
    run_fails "empty child grid launch" ~kernel:"p"
      "__global__ void c(int* o) { o[0] = 1; } __global__ void p(int* o) { \
       c<<<0, 4>>>(o); }";
    run_fails "block too large" ~kernel:"p"
      "__global__ void c(int* o) { o[0] = 1; } __global__ void p(int* o) { \
       c<<<1, 2048>>>(o); }";
    t "metrics count blocks and threads" (fun () ->
        let dev = Device.create ~cfg:Config.test_config () in
        Device.load_program dev
          (Minicu.Parser.program "__global__ void k(int* o) { o[0] = 1; }");
        let out = Device.alloc_int_zeros dev 1 in
        Device.launch dev ~kernel:"k" ~grid:(3, 1, 1) ~block:(32, 1, 1)
          ~args:[ Value.Ptr out ];
        ignore (Device.sync dev);
        let m = Device.metrics dev in
        Alcotest.(check int) "blocks" 3 m.blocks_executed;
        Alcotest.(check int) "threads" 96 m.threads_executed;
        Alcotest.(check int) "grids" 1 m.grids_launched);
    t "cdp entry cost only charged when kernel contains a launch" (fun () ->
        let run src =
          let dev = Device.create ~cfg:Config.test_config () in
          Device.load_program dev (Minicu.Parser.program src);
          let out = Device.alloc_int_zeros dev 1 in
          Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(32, 1, 1)
            ~args:[ Value.Ptr out ];
          ignore (Device.sync dev);
          (Device.metrics dev).breakdown.parent_cycles
        in
        let plain = run "__global__ void k(int* o) { o[0] = 1; }" in
        let with_launch =
          run
            "__global__ void c(int* o) { o[0] = 2; } __global__ void k(int* \
             o) { if (o[0] == 12345) { c<<<1, 1>>>(o); } o[0] = 1; }"
        in
        Alcotest.(check bool)
          "launch-existence overhead (Section VIII-D)" true
          (with_launch > plain));
  ]
