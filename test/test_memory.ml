(* Tests for the simulated device memory and the event queue. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

let raises_rte name f =
  t name (fun () ->
      match f () with
      | _ -> Alcotest.fail "expected a runtime error"
      | exception Value.Runtime_error _ -> ())

let mem_suite =
  [
    t "alloc and rw" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 4 ~init:(Value.Int 0) in
        Memory.store m { p with off = 2 } (Value.Int 42);
        Alcotest.(check int) "load" 42
          (Value.as_int (Memory.load m { p with off = 2 }));
        Alcotest.(check int) "init" 0 (Value.as_int (Memory.load m p)));
    t "independent buffers" (fun () ->
        let m = Memory.create () in
        let a = Memory.alloc m 2 ~init:(Value.Int 1) in
        let b = Memory.alloc m 2 ~init:(Value.Int 2) in
        Memory.store m a (Value.Int 9);
        Alcotest.(check int) "b untouched" 2 (Value.as_int (Memory.load m b)));
    t "many buffers force table growth" (fun () ->
        let m = Memory.create () in
        let ptrs =
          List.init 200 (fun i -> (i, Memory.alloc m 1 ~init:(Value.Int i)))
        in
        List.iter
          (fun (i, p) ->
            Alcotest.(check int) "value" i (Value.as_int (Memory.load m p)))
          ptrs);
    t "write/read helpers round-trip" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 5 ~init:(Value.Int 0) in
        Memory.write_ints m p [| 1; 2; 3; 4; 5 |];
        Alcotest.(check (array int)) "ints" [| 1; 2; 3; 4; 5 |]
          (Memory.read_ints m p 5);
        let q = Memory.alloc m 3 ~init:(Value.Float 0.) in
        Memory.write_floats m q [| 1.5; 2.5; 3.5 |];
        Alcotest.(check (array (float 0.0))) "floats" [| 1.5; 2.5; 3.5 |]
          (Memory.read_floats m q 3));
    t "size reports buffer length" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 7 ~init:(Value.Int 0) in
        Alcotest.(check int) "size" 7 (Memory.size m p));
    raises_rte "out of bounds high" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 4 ~init:(Value.Int 0) in
        Memory.load m { p with off = 4 });
    raises_rte "out of bounds negative" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 4 ~init:(Value.Int 0) in
        Memory.load m { p with off = -1 });
    raises_rte "use after free" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 4 ~init:(Value.Int 0) in
        Memory.free m p;
        Memory.load m p);
    raises_rte "double free" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 4 ~init:(Value.Int 0) in
        Memory.free m p;
        Memory.free m p);
    raises_rte "free of interior pointer" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 4 ~init:(Value.Int 0) in
        Memory.free m { p with off = 1 });
    raises_rte "negative allocation" (fun () ->
        let m = Memory.create () in
        Memory.alloc m (-1) ~init:(Value.Int 0));
    t "zero-length allocation is fine until accessed" (fun () ->
        let m = Memory.create () in
        let p = Memory.alloc m 0 ~init:(Value.Int 0) in
        Alcotest.(check int) "size 0" 0 (Memory.size m p));
    raises_rte "invalid buffer id" (fun () ->
        let m = Memory.create () in
        Memory.load m { Value.buf = 99; off = 0 });
    (* Large Int/Float-initialized buffers take the unboxed typed-storage
       path; everything observable must match the boxed representation. *)
    t "typed int buffer round-trips and dumps" (fun () ->
        let m = Memory.create () in
        let n = 2048 in
        let p = Memory.alloc m n ~init:(Value.Int 0) in
        Memory.store m { p with off = 7 } (Value.Int 42);
        Memory.store m { p with off = n - 1 } (Value.Int (-5)) ;
        Alcotest.(check int) "load" 42
          (Value.as_int (Memory.load m { p with off = 7 }));
        let dump = List.hd (Memory.dump m ~first:1) in
        Alcotest.(check int) "dump length" n (Array.length dump);
        Alcotest.(check bool) "dump cells" true
          (dump.(7) = Value.Int 42 && dump.(n - 1) = Value.Int (-5)
          && dump.(0) = Value.Int 0);
        Memory.write_ints m p (Array.init n (fun i -> i * 3));
        Alcotest.(check int) "bulk read" (3 * (n - 1))
          (Memory.read_ints m p n).(n - 1));
    t "typed float buffer round-trips and dumps" (fun () ->
        let m = Memory.create () in
        let n = 1536 in
        let p = Memory.alloc m n ~init:(Value.Float 0.5) in
        Memory.store m { p with off = 3 } (Value.Float 2.25);
        Alcotest.(check (float 0.0)) "load" 2.25
          (Value.as_float (Memory.load m { p with off = 3 }));
        let dump = List.hd (Memory.dump m ~first:1) in
        Alcotest.(check bool) "dump cells" true
          (dump.(3) = Value.Float 2.25 && dump.(0) = Value.Float 0.5));
    t "mismatched-type store spills, dump still exact" (fun () ->
        let m = Memory.create () in
        let n = 1024 in
        let p = Memory.alloc m n ~init:(Value.Int 1) in
        (* a Float landing in an int-typed buffer must survive verbatim *)
        Memory.store m { p with off = 100 } (Value.Float 6.75);
        Alcotest.(check (float 0.0)) "spilled load" 6.75
          (Value.as_float (Memory.load m { p with off = 100 }));
        let dump = List.hd (Memory.dump m ~first:1) in
        Alcotest.(check bool) "dump has the spilled value" true
          (dump.(100) = Value.Float 6.75 && dump.(99) = Value.Int 1);
        (* overwriting with the native type heals the cell *)
        Memory.store m { p with off = 100 } (Value.Int 8);
        Alcotest.(check int) "healed" 8
          (Value.as_int (Memory.load m { p with off = 100 }));
        let arr = Memory.read_array m p n in
        Alcotest.(check bool) "bulk read sees healed cell" true
          (arr.(100) = Value.Int 8));
  ]

let eq_suite =
  [
    t "pops in time order" (fun () ->
        let q = Event_queue.create () in
        Event_queue.push q 3.0 "c";
        Event_queue.push q 1.0 "a";
        Event_queue.push q 2.0 "b";
        let order = List.init 3 (fun _ -> snd (Event_queue.pop q)) in
        Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] order);
    t "ties resolve in insertion order" (fun () ->
        let q = Event_queue.create () in
        List.iteri (fun i v -> Event_queue.push q (if i = 1 then 0.0 else 0.0) v)
          [ "x"; "y"; "z" ];
        let order = List.init 3 (fun _ -> snd (Event_queue.pop q)) in
        Alcotest.(check (list string)) "fifo ties" [ "x"; "y"; "z" ] order);
    t "is_empty and length" (fun () ->
        let q = Event_queue.create () in
        Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
        Event_queue.push q 1.0 ();
        Alcotest.(check int) "len" 1 (Event_queue.length q);
        ignore (Event_queue.pop q);
        Alcotest.(check bool) "empty again" true (Event_queue.is_empty q));
    t "peek_time" (fun () ->
        let q = Event_queue.create () in
        Alcotest.(check (option (float 0.))) "none" None (Event_queue.peek_time q);
        Event_queue.push q 5.0 ();
        Event_queue.push q 2.0 ();
        Alcotest.(check (option (float 0.))) "min" (Some 2.0)
          (Event_queue.peek_time q));
    t "pop on empty raises" (fun () ->
        let q : unit Event_queue.t = Event_queue.create () in
        match Event_queue.pop q with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"heap sorts any float list"
         QCheck.(list (float_bound_inclusive 1000.0))
         (fun xs ->
           let q = Event_queue.create () in
           List.iter (fun x -> Event_queue.push q x x) xs;
           let out = List.init (List.length xs) (fun _ -> fst (Event_queue.pop q)) in
           out = List.sort compare xs));
  ]

let value_suite =
  [
    t "int coercions" (fun () ->
        Alcotest.(check int) "bool true" 1 (Value.as_int (Value.Bool true));
        Alcotest.(check int) "float trunc" 3 (Value.as_int (Value.Float 3.9));
        Alcotest.(check int) "neg float trunc" (-3)
          (Value.as_int (Value.Float (-3.9))));
    t "float coercions" (fun () ->
        Alcotest.(check (float 0.)) "int" 4.0 (Value.as_float (Value.Int 4)));
    t "bool coercions" (fun () ->
        Alcotest.(check bool) "nonzero" true (Value.as_bool (Value.Int 5));
        Alcotest.(check bool) "zero" false (Value.as_bool (Value.Int 0));
        Alcotest.(check bool) "float zero" false (Value.as_bool (Value.Float 0.0)));
    t "as_dim3 accepts ints" (fun () ->
        Alcotest.(check (triple int int int)) "int" (7, 1, 1)
          (Value.as_dim3 (Value.Int 7));
        Alcotest.(check (triple int int int)) "dim3" (1, 2, 3)
          (Value.as_dim3 (Value.Dim3 (1, 2, 3))));
    raises_rte "as_ptr on int" (fun () -> Value.as_ptr (Value.Int 3));
    raises_rte "as_int on ptr" (fun () ->
        Value.as_int (Value.Ptr { buf = 0; off = 0 }));
  ]

let suite = mem_suite @ eq_suite @ value_suite
