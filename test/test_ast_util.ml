(* Tests for the AST traversal/rewriting utilities. *)

open Minicu
open Minicu.Ast

let body src =
  match Parser.program ("__global__ void k(int* p, int n) {" ^ src ^ "}") with
  | [ f ] -> f.f_body
  | _ -> assert false

let func src =
  match Parser.program src with [ f ] -> f | l -> List.nth l 0

let t name f = Alcotest.test_case name `Quick f

let suite =
  [
    t "contains_launch finds nested launches" (fun () ->
        let ss = body "if (n > 0) { while (n > 1) { c<<<1, 1>>>(); } }" in
        Alcotest.(check bool) "found" true (Ast_util.contains_launch ss);
        Alcotest.(check bool) "not found" false
          (Ast_util.contains_launch (body "p[0] = 1;")));
    t "contains_sync finds barriers" (fun () ->
        Alcotest.(check bool) "sync" true
          (Ast_util.contains_sync (body "if (n) { __syncthreads(); }"));
        Alcotest.(check bool) "syncwarp" true
          (Ast_util.contains_sync (body "__syncwarp();"));
        Alcotest.(check bool) "fence is not a barrier" false
          (Ast_util.contains_sync (body "__threadfence();")));
    t "contains_shared" (fun () ->
        Alcotest.(check bool) "yes" true
          (Ast_util.contains_shared (body "__shared__ int b[4]; p[0] = 1;"));
        Alcotest.(check bool) "no" false (Ast_util.contains_shared (body "p[0] = 1;")));
    t "launches_of collects in order" (fun () ->
        let ss = body "a<<<1, 1>>>(); if (n) { b<<<2, 2>>>(); } c<<<3, 3>>>();" in
        Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ]
          (List.map (fun l -> l.l_kernel) (Ast_util.launches_of ss)));
    t "uses_var sees loop bounds" (fun () ->
        let ss = body "for (int i = 0; i < n; i++) { p[i] = 0; }" in
        Alcotest.(check bool) "n used" true (Ast_util.uses_var "n" ss);
        Alcotest.(check bool) "m unused" false (Ast_util.uses_var "m" ss));
    t "declared_names includes nested" (fun () ->
        let ss = body "int a = 1; if (n) { int b = 2; } __shared__ int c[2];" in
        Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ]
          (Ast_util.declared_names ss));
    t "fresh_name avoids collisions" (fun () ->
        Alcotest.(check string) "free" "_x" (Ast_util.fresh_name ~base:"_x" []);
        Alcotest.(check string) "taken" "_x_2"
          (Ast_util.fresh_name ~base:"_x" [ "_x" ]);
        Alcotest.(check string) "taken twice" "_x_3"
          (Ast_util.fresh_name ~base:"_x" [ "_x"; "_x_2" ]));
    t "subst_var replaces only free occurrences by name" (fun () ->
        let e = Parser.expr_of_string "a + b * a" in
        let e' = Ast_util.subst_var [ ("a", Int_lit 7) ] e in
        Alcotest.(check string) "subst" "7 + b * 7" (Pretty.expr_to_string e'));
    t "subst_var_stmts rewrites reserved vars" (fun () ->
        let ss = body "p[threadIdx.x] = blockIdx.x;" in
        let ss' =
          Ast_util.subst_var_stmts
            [ ("threadIdx", Var "_t"); ("blockIdx", Var "_b") ]
            ss
        in
        Alcotest.(check string) "rewritten" "p[_t.x] = _b.x;"
          (Pretty.stmt_to_string (List.hd ss')));
    t "rename_calls renames calls and launch targets" (fun () ->
        let ss = body "f(n); g<<<1, 1>>>(p);" in
        let ss' = Ast_util.rename_calls [ ("f", "f2"); ("g", "g2") ] ss in
        Alcotest.(check bool) "call renamed" true
          (Ast_util.fold_exprs_in_stmts
             (fun acc e -> acc || match e with Call ("f2", _) -> true | _ -> false)
             false ss');
        Alcotest.(check (list string)) "launch renamed" [ "g2" ]
          (List.map (fun l -> l.l_kernel) (Ast_util.launches_of ss')));
    t "simplify_expr folds constants" (fun () ->
        let check src expect =
          Alcotest.(check string) src expect
            (Pretty.expr_to_string
               (Ast_util.simplify_expr (Parser.expr_of_string src)))
        in
        check "a + 0" "a";
        check "1 * b" "b";
        check "2 + 3" "5";
        check "a / 1" "a";
        check "dim3(n, 1, 1).x" "n";
        check "dim3(n, m, 1).y" "m");
    t "map_stmts can expand a statement" (fun () ->
        let ss = body "p[0] = 1;" in
        let ss' =
          Ast_util.map_stmts
            ~stmt:(fun s -> [ s; s ])
            ss
        in
        Alcotest.(check int) "doubled" 2 (List.length ss'));
    t "fold_stmts visits for-header statements" (fun () ->
        let ss = body "for (int i = 0; i < n; i++) { p[i] = 0; }" in
        let decls =
          Ast_util.fold_stmts
            (fun acc s -> match s.sdesc with Decl _ -> acc + 1 | _ -> acc)
            0 ss
        in
        Alcotest.(check int) "decl in header" 1 decls);
    t "all_names covers params, locals, calls" (fun () ->
        let f =
          func "__global__ void k(int* data) { int x = f(data[0]); }"
        in
        let names = Ast_util.all_names f in
        List.iter
          (fun n ->
            Alcotest.(check bool) n true (List.mem n names))
          [ "data"; "x"; "f" ]);
    t "retag_deep preserves existing tags" (fun () ->
        let s = stmt ~tag:Tag_disagg (Expr_stmt (Int_lit 1)) in
        let wrapped = stmt (If (Bool_lit true, [ s ], [])) in
        match (retag_deep Tag_agg wrapped).sdesc with
        | If (_, [ inner ], []) ->
            Alcotest.(check bool) "inner kept" true (inner.stag = Tag_disagg)
        | _ -> Alcotest.fail "shape");
    t "replace_func and add_func_after" (fun () ->
        let p =
          Parser.program
            "__global__ void a() { } __global__ void b() { }"
        in
        let a = List.hd p in
        let p2 = Ast.replace_func p { a with f_ret = TVoid } in
        Alcotest.(check int) "same length" 2 (List.length p2);
        let extra =
          { a with f_name = "mid"; f_kind = Device }
        in
        let p3 = Ast.add_func_after p ~anchor:"a" extra in
        Alcotest.(check (list string)) "order" [ "a"; "mid"; "b" ]
          (List.map (fun f -> f.f_name) p3));
  ]
