(* Workload generator tests: determinism, CSR invariants, dataset shape. *)

let t name f = Alcotest.test_case name `Quick f

let csr_invariants (g : Workloads.Csr.t) =
  Alcotest.(check int) "row length" (g.n + 1) (Array.length g.row);
  Alcotest.(check int) "row starts at 0" 0 g.row.(0);
  Alcotest.(check int) "row ends at m" (Workloads.Csr.m g) g.row.(g.n);
  for v = 0 to g.n - 1 do
    if g.row.(v) > g.row.(v + 1) then Alcotest.fail "row not monotone"
  done;
  Array.iter
    (fun c -> if c < 0 || c >= g.n then Alcotest.fail "col out of range")
    g.col;
  Alcotest.(check int) "weights parallel to col" (Array.length g.col)
    (Array.length g.weight)

let is_symmetric (g : Workloads.Csr.t) =
  let edges = Hashtbl.create (Workloads.Csr.m g) in
  for v = 0 to g.n - 1 do
    for e = g.row.(v) to g.row.(v + 1) - 1 do
      Hashtbl.replace edges (v, g.col.(e)) ()
    done
  done;
  Hashtbl.fold
    (fun (a, b) () ok -> ok && Hashtbl.mem edges (b, a))
    edges true

let suite =
  [
    t "rng is deterministic" (fun () ->
        let a = Workloads.Rng.create ~seed:7 in
        let b = Workloads.Rng.create ~seed:7 in
        for _ = 1 to 100 do
          Alcotest.(check int) "same stream" (Workloads.Rng.int a 1000)
            (Workloads.Rng.int b 1000)
        done);
    t "rng bounds respected" (fun () ->
        let r = Workloads.Rng.create ~seed:3 in
        for _ = 1 to 1000 do
          let x = Workloads.Rng.int r 17 in
          if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x;
          let f = Workloads.Rng.float r in
          if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
        done);
    t "rng split is independent" (fun () ->
        let a = Workloads.Rng.create ~seed:7 in
        let b = Workloads.Rng.split a in
        let xs = List.init 20 (fun _ -> Workloads.Rng.int a 1000) in
        let ys = List.init 20 (fun _ -> Workloads.Rng.int b 1000) in
        Alcotest.(check bool) "different streams" false (xs = ys));
    t "shuffle is a permutation" (fun () ->
        let r = Workloads.Rng.create ~seed:11 in
        let a = Array.init 50 Fun.id in
        Workloads.Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted);
    t "of_edges builds a correct CSR" (fun () ->
        let g =
          Workloads.Csr.of_edges ~n:4
            [ (0, 1, 5); (0, 2, 6); (2, 3, 7); (3, 0, 8) ]
        in
        csr_invariants g;
        Alcotest.(check (array int)) "neighbors of 0" [| 1; 2 |]
          (Workloads.Csr.neighbors g 0);
        Alcotest.(check int) "degree 1" 0 (Workloads.Csr.degree g 1);
        Alcotest.(check int) "weight of 2->3" 7 g.weight.(g.row.(2)));
    t "of_edges rejects out-of-range endpoints" (fun () ->
        match Workloads.Csr.of_edges ~n:2 [ (0, 5, 1) ] with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    t "symmetrize yields a symmetric graph without self-loops" (fun () ->
        let g =
          Workloads.Csr.symmetrize
            (Workloads.Csr.of_edges ~n:5
               [ (0, 1, 1); (1, 0, 1); (2, 3, 2); (4, 4, 9) ])
        in
        csr_invariants g;
        Alcotest.(check bool) "symmetric" true (is_symmetric g);
        for v = 0 to g.n - 1 do
          Array.iter
            (fun u -> if u = v then Alcotest.fail "self loop")
            (Workloads.Csr.neighbors g v)
        done);
    t "sort_neighbors sorts and keeps weights aligned" (fun () ->
        let g =
          Workloads.Csr.of_edges ~n:3
            [ (0, 2, 20); (0, 1, 10); (1, 0, 30) ]
        in
        let s = Workloads.Csr.sort_neighbors g in
        Alcotest.(check (array int)) "sorted" [| 1; 2 |]
          (Workloads.Csr.neighbors s 0);
        Alcotest.(check int) "weight follows" 10 s.weight.(s.row.(0)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:100 ~name:"csr of_edges invariants hold"
         QCheck.(
           pair (int_range 1 20)
             (list_of_size (Gen.int_range 0 60) (pair (int_bound 19) (int_bound 19))))
         (fun (n, pairs) ->
           let edges =
             List.filter_map
               (fun (a, b) ->
                 if a < n && b < n then Some (a, b, 1) else None)
               pairs
           in
           let g = Workloads.Csr.of_edges ~n edges in
           g.row.(0) = 0
           && g.row.(n) = List.length edges
           && Array.for_all (fun c -> c >= 0 && c < n) g.col));
    t "kron generator is deterministic and heavy-tailed" (fun () ->
        let g1 = Workloads.Graph_gen.kron ~scale:8 ~edge_factor:8 () in
        let g2 = Workloads.Graph_gen.kron ~scale:8 ~edge_factor:8 () in
        Alcotest.(check (array int)) "same rows" g1.row g2.row;
        csr_invariants g1;
        Alcotest.(check bool) "symmetric" true (is_symmetric g1);
        let avg = Workloads.Csr.avg_degree g1 in
        let mx = float_of_int (Workloads.Csr.max_degree g1) in
        Alcotest.(check bool) "heavy tail: max >> avg" true (mx > 6.0 *. avg));
    t "webgraph generator shape" (fun () ->
        let g = Workloads.Graph_gen.webgraph ~n:400 ~edges_per_vertex:6 () in
        csr_invariants g;
        Alcotest.(check bool) "power-ish tail" true
          (Workloads.Csr.max_degree g > 5 * int_of_float (Workloads.Csr.avg_degree g)));
    t "road generator matches USA-road-d.NY statistics" (fun () ->
        let g = Workloads.Graph_gen.road ~rows:30 ~cols:30 () in
        csr_invariants g;
        let avg = Workloads.Csr.avg_degree g in
        Alcotest.(check bool) "avg degree near 3" true (avg > 2.0 && avg < 4.5);
        Alcotest.(check bool) "max degree <= 8" true
          (Workloads.Csr.max_degree g <= 8));
    t "bezier tessellation counts honor bounds" (fun () ->
        let d = Workloads.Bezier.t0032_c16 ~n_lines:100 () in
        Array.iter
          (fun l ->
            let n = Workloads.Bezier.tess_points d l in
            if n < 2 || n > 32 then Alcotest.failf "out of bounds: %d" n)
          d.lines);
    t "bezier eval hits the endpoints" (fun () ->
        let l =
          { Workloads.Bezier.p0 = (0., 0.); p1 = (5., 9.); p2 = (10., 0.) }
        in
        Alcotest.(check (pair (float 1e-9) (float 1e-9))) "u=0" (0., 0.)
          (Workloads.Bezier.eval l 0.0);
        Alcotest.(check (pair (float 1e-9) (float 1e-9))) "u=1" (10., 0.)
          (Workloads.Bezier.eval l 1.0));
    t "sat generator: clause sizes and distinct vars" (fun () ->
        let f = Workloads.Sat.rand3 ~n_vars:50 ~n_clauses:200 () in
        Array.iter
          (fun clause ->
            Alcotest.(check int) "k=3" 3 (Array.length clause);
            let vars =
              Array.to_list (Array.map (fun l -> abs l) clause)
            in
            Alcotest.(check int) "distinct" 3
              (List.length (List.sort_uniq compare vars));
            Array.iter
              (fun l ->
                if l = 0 || abs l > 50 then Alcotest.fail "literal range")
              clause)
          f.clauses);
    t "sat occurrences cover every literal" (fun () ->
        let f = Workloads.Sat.rand3 ~n_vars:30 ~n_clauses:90 () in
        let occ = Workloads.Sat.occurrences f in
        let total = Array.fold_left (fun s a -> s + Array.length a) 0 occ in
        Alcotest.(check int) "3 per clause" (3 * 90) total);
    t "5-SAT occurrence distribution is skewed" (fun () ->
        let f = Workloads.Sat.sat5 ~n_vars:200 ~n_clauses:1500 () in
        let avg, mx = Workloads.Sat.occurrence_stats f in
        Alcotest.(check bool) "skew" true (float_of_int mx > 4.0 *. avg));
  ]
