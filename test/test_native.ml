(* The native-backend suite: transpiler goldens, emit-time rejections,
   and the cross-backend differential layer — emitted parallel-OCaml
   programs must produce memory dumps byte-identical to the simulator
   (both engines) on order-independent programs.

   Tests that compile and run emitted code shell out to a nested dune
   build (Native.Build); they are tagged `Slow only where they rerun an
   executable many times. *)

module E = Native.Emit
module H = Native.Hostspec
module B = Native.Build

let t name f = Alcotest.test_case name `Quick f

let cfg_closure = Gpusim.Config.test_config

let cfg_bytecode =
  { Gpusim.Config.test_config with engine = Gpusim.Config.Bytecode }

let parse src = Minicu.Parser.program ~file:"<test>" src

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_typed src =
  let prog = parse src in
  Minicu.Typecheck.check prog;
  prog

(* Run [host] natively (one baseline variant) and on both simulator
   engines; all three dumps must be byte-identical. Returns the dump. *)
let tri_check ?(label = "base") prog host =
  let source =
    E.unit_source
      ~variants:[ { E.vu_label = label; vu_prog = prog; vu_autos = [] } ]
      ~host
  in
  let out = B.compile_and_run ~source () in
  let native =
    match B.sections out with
    | [ (l, body) ] when l = label -> body
    | secs ->
        Alcotest.failf "expected one %S section, got %d: %s" label
          (List.length secs) out
  in
  let sim cfg =
    H.render_dump (H.run_sim ~cfg prog ~auto_params:[] host)
  in
  Alcotest.(check string) "native = closure sim" (sim cfg_closure) native;
  Alcotest.(check string) "native = bytecode sim" (sim cfg_bytecode) native;
  native

(* A feature gauntlet: device calls with break/continue-in-for, shared
   memory + barrier reduction, float math and casts, atomics, dim3
   construction and member writes, while loops, and device-side child
   launches. Every write is order-independent, so the parallel native
   run must match the deterministic simulator bit for bit. *)
let gauntlet_src =
  {|
__device__ int scale(int v, int k) {
  int acc = 0;
  for (int j = 0; j < k; j = j + 1) {
    if (j == 2) { continue; }
    if (j > 5) { break; }
    acc = acc + v;
  }
  return acc;
}

__global__ void child(int* out, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    atomicAdd(&out[base + i], i + 1);
  }
}

__global__ void reduce(int* in, int* out, int n) {
  __shared__ int sh[64];
  int tid = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tid;
  sh[tid] = i < n ? in[i] : 0;
  __syncthreads();
  for (int s = 32; s > 0; s = s / 2) {
    if (tid < s) { sh[tid] = sh[tid] + sh[tid + s]; }
    __syncthreads();
  }
  if (tid == 0) { out[blockIdx.x] = sh[0]; }
}

__global__ void fmix(float* o, int* iv, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    float x = (float)iv[i] / 4.0;
    float y = sqrt(fabs(x - 2.5)) + pow(2.0, 3.0);
    o[i] = min(x, y) + max(y - x, 0.125) * 1.5;
    iv[i] = (int)(o[i] + 0.5) + scale(2, 7);
  }
}

__global__ void spawn(int* rows, int* out, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int deg = rows[v + 1] - rows[v];
    if (deg > 0) {
      child<<<(deg + 3) / 4, 4>>>(out, rows[v], deg);
    }
  }
}

__global__ void dims(int* o) {
  if (threadIdx.x == 0 && blockIdx.x == 0) {
    dim3 g = dim3(2, 1, 1);
    dim3 b;
    b.x = 4;
    g.y = b.x / 4;
    child<<<g, b>>>(o, 0, 6);
    int w = 0;
    while (w < 3) {
      o[32 + w] = g.x * 10 + b.x;
      w = w + 1;
    }
  }
}
|}

let gauntlet_host =
  {
    H.ops =
      [
        H.Alloc_ints (Array.init 128 (fun i -> (i * 7 mod 23) - 5));
        H.Alloc_int_zeros 2;
        H.Alloc_float_zeros 8;
        H.Alloc_ints [| 3; 7; 10; -2; 5; 0; 9; 1 |];
        H.Alloc_ints [| 0; 2; 5; 5; 9 |];
        H.Alloc_int_zeros 16;
        H.Alloc_int_zeros 40;
        H.Launch
          {
            kernel = "reduce";
            grid = (2, 1, 1);
            block = (64, 1, 1);
            args = [ H.A_buf 0; H.A_buf 1; H.A_int 100 ];
          };
        H.Launch
          {
            kernel = "fmix";
            grid = (2, 1, 1);
            block = (4, 1, 1);
            args = [ H.A_buf 2; H.A_buf 3; H.A_int 7 ];
          };
        H.Launch
          {
            kernel = "spawn";
            grid = (1, 1, 1);
            block = (4, 1, 1);
            args = [ H.A_buf 4; H.A_buf 5; H.A_int 4 ];
          };
        H.Launch
          {
            kernel = "dims";
            grid = (1, 1, 1);
            block = (1, 1, 1);
            args = [ H.A_buf 6 ];
          };
        H.Sync;
      ];
  }

let dump_line n dump =
  match
    List.find_opt
      (fun l ->
        String.length l > 4 && String.sub l 0 4 = "buf "
        && l.[4] = Char.chr (Char.code '0' + n))
      (String.split_on_char '\n' dump)
  with
  | Some l -> l
  | None -> Alcotest.failf "dump has no buf %d line:\n%s" n dump

let test_gauntlet () =
  let prog = check_typed gauntlet_src in
  let dump = tri_check prog gauntlet_host in
  (* Spot-check hand-computed cells so an all-backends-wrong emitter
     cannot pass by agreeing with itself. spawn's children add i+1 over
     each parent's row [rows[v], rows[v]+deg): rows = 0,2,5,5,9. *)
  Alcotest.(check string)
    "spawn out" "buf 5: i1 i2 i1 i2 i3 i1 i2 i3 i4 i0 i0 i0 i0 i0 i0 i0"
    (dump_line 5 dump);
  (* dims: g = (2,1,1) with g.y := b.x/4 = 1, so the while loop writes
     g.x*10 + b.x = 24 at cells 32..34; its child covers cells 0..5. *)
  let b6 = dump_line 6 dump in
  let cells = String.split_on_char ' ' b6 in
  Alcotest.(check (list string))
    "dims cells 0..6" [ "i1"; "i2"; "i3"; "i4"; "i5"; "i6"; "i0" ]
    (List.filteri (fun i _ -> i >= 2 && i < 9) cells);
  Alcotest.(check (list string))
    "dims cells 32..35" [ "i24"; "i24"; "i24"; "i0" ]
    (List.filteri (fun i _ -> i >= 34 && i < 38) cells)

(* ------------------------------------------------------------------ *)
(* Benchmark matrix: every pass combination, both engines, plus the
   pure-OCaml reference                                                *)
(* ------------------------------------------------------------------ *)

(* Decode dump cells back into values for the reference leg. *)
let cells_of_buf n dump =
  let line = dump_line n dump in
  match String.split_on_char ' ' line with
  | _buf :: _n :: cells -> cells
  | _ -> Alcotest.failf "malformed dump line: %s" line

let ints_of_buf n dump =
  List.map
    (fun c ->
      if String.length c < 2 || c.[0] <> 'i' then
        Alcotest.failf "expected int cell, got %S" c
      else int_of_string (String.sub c 1 (String.length c - 1)))
    (cells_of_buf n dump)

let floats_of_buf n dump =
  List.map
    (fun c ->
      if String.length c < 2 || c.[0] <> 'f' then
        Alcotest.failf "expected float cell, got %S" c
      else
        Int64.float_of_bits
          (Int64.of_string ("0x" ^ String.sub c 1 (String.length c - 1))))
    (cells_of_buf n dump)

(* The 2^3 pass combinations at the oracle's default knobs, block
   aggregation (the granularities the native backend rejects — warp,
   multi-block, grid — are covered by the negative tests). *)
let combos =
  Dpopt.Pipeline.enumerate ~threshold:9 ~cfactor:3
    ~granularity:Dpopt.Aggregation.Block ()

(* Run a benchmark's static host driver across all pass combinations:
   one emitted executable bundling every variant, compared per-variant
   against both simulator engines, plus [fingerprint] recomputing the
   benchmark's pure-OCaml reference from the native dump alone. *)
let bench_matrix (spec : Benchmarks.Bench_common.spec)
    ~(fingerprint : string -> int) () =
  let host =
    match spec.native_host with
    | Some h -> h
    | None -> Alcotest.failf "%s has no native host spec" spec.name
  in
  let prog = Minicu.Parser.program spec.cdp_src in
  let runs =
    List.map
      (fun (label, opts) -> (label, Dpopt.Pipeline.run ~opts prog))
      combos
  in
  Alcotest.(check int) "matrix is the full 2^3" 8 (List.length runs);
  let variants =
    List.map
      (fun (label, (r : Dpopt.Pipeline.result)) ->
        { E.vu_label = label; vu_prog = r.prog; vu_autos = r.auto_params })
      runs
  in
  let out = B.compile_and_run ~source:(E.unit_source ~variants ~host) () in
  let secs = B.sections out in
  List.iter
    (fun (label, (r : Dpopt.Pipeline.result)) ->
      let native =
        match List.assoc_opt label secs with
        | Some d -> d
        | None -> Alcotest.failf "no native section for %s" label
      in
      let sim cfg =
        H.render_dump (H.run_sim ~cfg r.prog ~auto_params:r.auto_params host)
      in
      Alcotest.(check string)
        (Fmt.str "%s/%s %s: native = closure sim" spec.name spec.dataset label)
        (sim cfg_closure) native;
      Alcotest.(check string)
        (Fmt.str "%s/%s %s: native = bytecode sim" spec.name spec.dataset
           label)
        (sim cfg_bytecode) native;
      Alcotest.(check int)
        (Fmt.str "%s/%s %s: native dump = OCaml reference" spec.name
           spec.dataset label)
        (spec.reference ()) (fingerprint native))
    runs

(* Reference fingerprints recomputed from the dump, mirroring each
   benchmark's [run] read-back. *)
let bt_fingerprint dump =
  let cs = List.hd (ints_of_buf 3 dump) in
  let np = Array.of_list (ints_of_buf 2 dump) in
  cs + Benchmarks.Bench_common.array_hash np

let sp_fingerprint dump =
  (* After 3 rounds of double-buffer swaps the final surveys sit in the
     second eta buffer (buf 5). *)
  Benchmarks.Bench_common.array_hash
    (Array.of_list
       (List.map Benchmarks.Bench_common.quantize (floats_of_buf 5 dump)))

let tc_fingerprint dump = List.hd (ints_of_buf 5 dump)

let find_spec name dataset =
  match Benchmarks.Registry.find ~name ~dataset () with
  | Some s -> s
  | None -> Alcotest.failf "no registry entry %s/%s" name dataset

(* ------------------------------------------------------------------ *)
(* Golden transpile corpus                                             *)
(* ------------------------------------------------------------------ *)

(* The corpus programs the backend supports (barriers uses
   __threadfence, collectives uses warp intrinsics — those are the
   negative fixtures below). Golden [.native.ml] files pin the emitted
   text; regenerate with CORPUS_PROMOTE=1 after an intentional emitter
   change, as with the other corpus goldens. *)
let golden_fixtures =
  [ "atomics"; "device_calls"; "dim3s"; "floats"; "loops"; "nested" ]

let transpile_golden base () =
  let src =
    Test_corpus.read_file
      (Filename.concat Test_corpus.corpus_dir (base ^ ".minicu"))
  in
  let prog = Minicu.Parser.program ~file:(base ^ ".minicu") src in
  Test_corpus.golden_check ~what:"native transpile"
    ~fixture:(base ^ ".minicu")
    ~golden_name:(base ^ ".native.ml")
    (E.program prog)

(* Emitted golden text must actually be compilable OCaml: build one
   fixture's module against the runtime (no driver, no execution). *)
let test_goldens_compile () =
  let src =
    Test_corpus.read_file (Filename.concat Test_corpus.corpus_dir "nested.minicu")
  in
  let prog = Minicu.Parser.program ~file:"nested.minicu" src in
  let source = E.program prog ^ "\nlet () = ignore kernels\n" in
  ignore (B.compile_and_run ~source ())

(* ------------------------------------------------------------------ *)
(* Negative tests: emit-time rejections                                *)
(* ------------------------------------------------------------------ *)

let reject_corpus base ~needle () =
  let src =
    Test_corpus.read_file
      (Filename.concat Test_corpus.corpus_dir (base ^ ".minicu"))
  in
  let prog = Minicu.Parser.program ~file:(base ^ ".minicu") src in
  match E.supported prog with
  | None -> Alcotest.failf "%s should be rejected by the native backend" base
  | Some (loc, msg) ->
      if loc.Minicu.Loc.line = 0 then
        Alcotest.failf "%s: rejection lost its source location" base;
      if not (contains ~needle msg) then
        Alcotest.failf "%s: rejection %S does not mention %S" base msg needle

let test_reject_host_followup () =
  let spec = find_spec "TC" "KRON" in
  let prog = Minicu.Parser.program spec.cdp_src in
  let r =
    Dpopt.Pipeline.run
      ~opts:
        (Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Grid ())
      prog
  in
  match E.supported r.prog with
  | None ->
      Alcotest.fail
        "grid-granularity aggregation (host followup) should be rejected"
  | Some (_, msg) ->
      if not (contains ~needle:"host followup" msg) then
        Alcotest.failf "unexpected rejection: %s" msg

(* Satellite: the true-parallelism oracle smoke, documenting why
   [dpfuzz --backend native] exists. [Oracle.racy_global_injection]
   prepends a cross-block unsynchronized global RMW loop to the kernel;
   the simulator's deterministic scheduler dumps identical memory on
   every run, while real domain parallelism loses updates
   nondeterministically — repeated native runs diverge from each other,
   or at the very least from the serialized simulator count. (The
   intra-block [Oracle.racy_injection] stays deterministic natively:
   block fibers run in thread-id order.) *)
let test_racy_divergence () =
  let prog = parse "__global__ void parent(int *acc) { acc[0] = 1; }" in
  let v = Difftest.Oracle.racy_global_injection ~iters:2000 () in
  let compiled = v.Difftest.Oracle.v_compile prog in
  let host =
    {
      H.ops =
        [
          H.Alloc_int_zeros 4;
          H.Launch
            {
              kernel = "parent";
              grid = (4, 1, 1);
              block = (8, 1, 1);
              args = [ H.A_buf 0 ];
            };
          H.Sync;
        ];
    }
  in
  let prog = compiled.Difftest.Oracle.c_prog in
  let sim () =
    H.render_dump (H.run_sim ~cfg:cfg_closure prog ~auto_params:[] host)
  in
  let s1 = sim () in
  Alcotest.(check string) "simulator is deterministic across runs" s1 (sim ());
  let source =
    E.unit_source
      ~variants:[ { E.vu_label = "racy"; vu_prog = prog; vu_autos = [] } ]
      ~host
  in
  let dumps =
    B.compile_and_run_many ~runs:8 ~source ()
    |> List.map (fun out ->
           match List.assoc_opt "racy" (B.sections out) with
           | Some d -> d
           | None -> Alcotest.failf "no racy section in: %s" out)
  in
  (* Lost updates are not guaranteed in any single run, but 8 runs of 4
     contended blocks x 8 threads x 2000 non-atomic RMWs all landing
     exactly on the serialized simulator count would mean no real
     parallelism at all. *)
  if
    List.length (List.sort_uniq compare dumps) < 2
    && List.for_all (String.equal s1) dumps
  then
    Alcotest.fail
      "native runs never diverged from the deterministic simulator count"

let suite =
  [
    t "gauntlet: native = sim (both engines)" test_gauntlet;
    t "matrix BT/T0032-C16: 8 combos, both engines, reference"
      (bench_matrix (find_spec "BT" "T0032-C16") ~fingerprint:bt_fingerprint);
    t "matrix SP/RAND-3: 8 combos, both engines, reference"
      (bench_matrix (find_spec "SP" "RAND-3") ~fingerprint:sp_fingerprint);
    t "matrix TC/KRON: 8 combos, both engines, reference"
      (bench_matrix (find_spec "TC" "KRON") ~fingerprint:tc_fingerprint);
    t "goldens: one transpiled module compiles against the runtime"
      test_goldens_compile;
    t "reject: __threadfence (no cross-block ordering)"
      (reject_corpus "barriers" ~needle:"__threadfence");
    t "reject: warp collectives (no SIMT lockstep)"
      (reject_corpus "collectives" ~needle:"warp collective");
    t "reject: grid aggregation's host followup" test_reject_host_followup;
    t "racy injection: native diverges, simulator does not"
      test_racy_divergence;
  ]
  @ List.map
      (fun base ->
        t (base ^ ": transpile matches .native.ml golden")
          (transpile_golden base))
      golden_fixtures
