(* Golden-corpus suite. Every test/corpus/*.minicu fixture must:

     1. parse, and for good fixtures, typecheck;
     2. round-trip — parse → pretty → parse yields an equal AST;
     3. pretty-print byte-for-byte to its committed .golden file;
     4. (bad_* fixtures) produce exactly the dpcheck diagnostics pinned in
        its .diags golden — static lints first, then dynamic findings from
        any CHECK-RUN directives — and at least one finding.

   After an intentional pretty-printer or diagnostic change, run with
   CORPUS_PROMOTE=1 to rewrite the goldens, then review the diff. *)

module Static = Analysis.Static
module Dynamic = Analysis.Dynamic

let t name f = Alcotest.test_case name `Quick f

(* Under `dune runtest` the suite runs in _build/default/test with a
   copied corpus/; under `dune exec` from the repo root it is
   test/corpus. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus"
  else if Sys.file_exists "test/corpus" then "test/corpus"
  else Fmt.failwith "cannot locate the corpus directory from %s" (Sys.getcwd ())

(* Promotion must write to the source tree, not the build copy. *)
let promote_dir =
  if Sys.file_exists "../../../test/corpus" then "../../../test/corpus"
  else corpus_dir

let promoting = Sys.getenv_opt "CORPUS_PROMOTE" <> None

let read_file path = In_channel.with_open_text path In_channel.input_all

let write_file path s =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s)

let fixtures =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".minicu")
  |> List.sort compare

let golden_check ~what ~fixture ~golden_name actual =
  let committed = Filename.concat corpus_dir golden_name in
  if promoting then
    write_file (Filename.concat promote_dir golden_name) actual
  else if not (Sys.file_exists committed) then
    Alcotest.failf "%s: no %s golden; run with CORPUS_PROMOTE=1 to create %s"
      fixture what golden_name
  else
    let expected = read_file committed in
    if expected <> actual then
      Alcotest.failf
        "%s: %s deviates from its golden (%s).@.--- expected@.%s@.--- got@.%s@.\
         If the change is intentional, rerun with CORPUS_PROMOTE=1."
        fixture what golden_name expected actual

let diags_of src prog =
  let static =
    List.map (Fmt.str "%a" Static.pp_diag) (Static.check_program prog)
  in
  let dynamic = Dynamic.run prog (Dynamic.directives src) in
  static @ dynamic

let fixture_tests file =
  let base = Filename.chop_suffix file ".minicu" in
  let is_bad = String.length base >= 4 && String.sub base 0 4 = "bad_" in
  let load () =
    let src = read_file (Filename.concat corpus_dir file) in
    (src, Minicu.Parser.program ~file src)
  in
  [
    t (base ^ ": parse/pretty/parse round-trip") (fun () ->
        let _, prog = load () in
        if not is_bad then Minicu.Typecheck.check prog;
        let printed = Minicu.Pretty.program prog in
        let reparsed = Minicu.Parser.program ~file printed in
        if not (Minicu.Ast.equal_program prog reparsed) then
          Alcotest.failf "%s: pretty output parses to a different AST:@.%s"
            file printed);
    t (base ^ ": pretty output matches golden") (fun () ->
        let _, prog = load () in
        golden_check ~what:"pretty output" ~fixture:file
          ~golden_name:(base ^ ".golden")
          (Minicu.Pretty.program prog));
  ]
  @
  if is_bad then
    [
      t (base ^ ": dpcheck diagnostics match golden") (fun () ->
          let src, prog = load () in
          let diags = diags_of src prog in
          if diags = [] then
            Alcotest.failf "%s: a bad fixture produced no diagnostics" file;
          golden_check ~what:"diagnostics" ~fixture:file
            ~golden_name:(base ^ ".diags")
            (String.concat "\n" diags ^ "\n"));
    ]
  else
    [
      t (base ^ ": no static errors") (fun () ->
          let _, prog = load () in
          match Static.errors (Static.check_program prog) with
          | [] -> ()
          | d :: _ -> Alcotest.failf "%s: %a" file Static.pp_diag d);
    ]

let suite = List.concat_map fixture_tests fixtures
