(* Compile-service tests (lib/serve): the sharded LRU, metrics JSON, the
   engine's cached-vs-uncached byte identity over the whole golden corpus,
   the warm-cache throughput bar, and the shared CLI error surface. *)

let t name f = Alcotest.test_case name `Quick f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- corpus -------------------------------------------------------- *)

(* Under `dune runtest` cwd is _build/default/test (staged corpus/ and
   built ../bin); under `dune exec` from the repo root it is the root. *)
let corpus_dir () =
  if Sys.file_exists "corpus" then "corpus"
  else if Sys.file_exists "test/corpus" then "test/corpus"
  else Fmt.failwith "cannot locate the corpus directory from %s" (Sys.getcwd ())

let bin_dir () =
  if Sys.file_exists "../bin/dpoptc.exe" then "../bin"
  else if Sys.file_exists "_build/default/bin/dpoptc.exe" then
    "_build/default/bin"
  else Fmt.failwith "cannot locate the CLI binaries from %s" (Sys.getcwd ())

let corpus_sources () =
  let corpus = corpus_dir () in
  Sys.readdir corpus |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".minicu")
  |> List.sort String.compare
  |> List.map (fun f ->
         ( f,
           In_channel.with_open_text (Filename.concat corpus f)
             In_channel.input_all ))

let eight_combos () =
  Dpopt.Pipeline.enumerate ~threshold:32 ~cfactor:2
    ~granularity:(Dpopt.Aggregation.Multi_block 4) ~agg_threshold:4 ()

(* ---- suite --------------------------------------------------------- *)

let suite =
  [
    t "lru: recency order decides eviction" (fun () ->
        let c = Serve.Lru.create ~shards:1 ~bytes:10 () in
        Serve.Lru.add c ~key:"a" ~size:4 "A";
        Serve.Lru.add c ~key:"b" ~size:4 "B";
        (* touch a, so b is now the LRU entry *)
        Alcotest.(check (option string)) "a hit" (Some "A") (Serve.Lru.find c "a");
        Serve.Lru.add c ~key:"c" ~size:4 "C";
        Alcotest.(check (option string)) "b evicted" None (Serve.Lru.find c "b");
        Alcotest.(check (option string)) "a kept" (Some "A") (Serve.Lru.find c "a");
        Alcotest.(check (option string)) "c kept" (Some "C") (Serve.Lru.find c "c");
        let s = Serve.Lru.stats c in
        Alcotest.(check int) "entries" 2 s.Serve.Lru.entries;
        Alcotest.(check int) "bytes" 8 s.Serve.Lru.bytes;
        Alcotest.(check int) "insertions" 3 s.Serve.Lru.insertions;
        Alcotest.(check int) "evictions" 1 s.Serve.Lru.evictions);
    t "lru: add replaces an existing key" (fun () ->
        let c = Serve.Lru.create ~shards:1 ~bytes:100 () in
        Serve.Lru.add c ~key:"k" ~size:10 1;
        Serve.Lru.add c ~key:"k" ~size:20 2;
        Alcotest.(check (option int)) "latest value" (Some 2)
          (Serve.Lru.find c "k");
        let s = Serve.Lru.stats c in
        Alcotest.(check int) "one entry" 1 s.Serve.Lru.entries;
        Alcotest.(check int) "replaced bytes" 20 s.Serve.Lru.bytes);
    t "lru: oversized entries are not admitted" (fun () ->
        let c = Serve.Lru.create ~shards:1 ~bytes:10 () in
        Serve.Lru.add c ~key:"big" ~size:11 ();
        Alcotest.(check bool) "absent" true (Serve.Lru.find c "big" = None);
        Alcotest.(check int) "empty" 0 (Serve.Lru.stats c).Serve.Lru.entries);
    t "lru: shards split the budget but not the key space" (fun () ->
        let c = Serve.Lru.create ~shards:4 ~bytes:4000 () in
        for i = 1 to 40 do
          Serve.Lru.add c ~key:(string_of_int i) ~size:10 i
        done;
        for i = 1 to 40 do
          Alcotest.(check (option int))
            (Fmt.str "key %d" i)
            (Some i)
            (Serve.Lru.find c (string_of_int i))
        done);
    t "metrics: empty snapshot renders null, not nan" (fun () ->
        let s = Serve.Metrics.snapshot (Serve.Metrics.create ()) in
        Alcotest.(check bool) "hit rate nan" true (Float.is_nan s.hit_rate);
        let j = Serve.Metrics.json s in
        Alcotest.(check bool) "no nan token" false
          (contains ~sub:"nan" j);
        Alcotest.(check bool) "null present" true
          (contains ~sub:"\"p50_ms\": null" j));
    t "metrics: counters and percentiles" (fun () ->
        let m = Serve.Metrics.create () in
        Serve.Metrics.lookup m ~stage:"parse" ~hit:false;
        Serve.Metrics.lookup m ~stage:"parse" ~hit:true;
        Serve.Metrics.lookup m ~stage:"parse" ~hit:true;
        Serve.Metrics.lookup m ~stage:"dpcheck" ~hit:false;
        List.iter (Serve.Metrics.latency m) [ 0.001; 0.002; 0.003; 0.004 ];
        let s = Serve.Metrics.snapshot m in
        Alcotest.(check int) "lookups" 4 s.lookups;
        Alcotest.(check (float 1e-9)) "hit rate" 0.5 s.hit_rate;
        Alcotest.(check int) "requests" 4 s.requests;
        Alcotest.(check (float 1e-6)) "p50" 2.5 s.p50_ms;
        Alcotest.(check (float 1e-6)) "p99" 3.97 s.p99_ms;
        Alcotest.(check (list (pair string (pair int int))))
          "stage counters"
          [ ("dpcheck", (0, 1)); ("parse", (2, 1)) ]
          (List.map
             (fun ((n, c) : string * Serve.Metrics.stage_counters) ->
               (n, (c.hits, c.misses)))
             s.stages));
    t "engine: corpus x 8 combos, cold and warm, byte-identical" (fun () ->
        (* One engine across the whole matrix, so pass-stage entries are
           shared across option records; a fixed profile exercises the
           predict stage on every fixture. *)
        let eng = Serve.Engine.create () in
        let profile =
          Costmodel.Profile.synthetic ~seed:7 ~items:64 ~mean:32 ()
        in
        let jobs =
          List.concat_map
            (fun (file, src) ->
              List.map
                (fun (label, opts) ->
                  ( label,
                    {
                      Serve.Engine.rq_file = file;
                      rq_src = src;
                      rq_opts = opts;
                      rq_profile = Some profile;
                    } ))
                (eight_combos ()))
            (corpus_sources ())
        in
        let pass () = List.map (fun (_, rq) -> Serve.Engine.compile eng rq) jobs in
        let cold = pass () in
        let warm = pass () in
        List.iteri
          (fun i ((label, rq), (c, w)) ->
            let name = Fmt.str "%s [%s] #%d" rq.Serve.Engine.rq_file label i in
            (match (c : (Serve.Engine.response, string) result) with
            | Error d -> Alcotest.failf "%s rejected: %s" name d
            | Ok rs ->
                let expected, _ =
                  Dpopt.Pipeline.run_source ~opts:rq.rq_opts rq.rq_src
                in
                Alcotest.(check string)
                  (name ^ " matches uncached pipeline")
                  expected rs.rs_optimized;
                Alcotest.(check (list string))
                  (name ^ " diags match direct dpcheck")
                  (List.map
                     (Fmt.str "%a" Analysis.Static.pp_diag)
                     (Analysis.Static.check_program
                        (Minicu.Parser.program ~file:rq.rq_file rq.rq_src)))
                  rs.rs_diags);
            if c <> w then Alcotest.failf "%s: warm response diverged" name)
          (List.combine jobs (List.combine cold warm));
        (* the warm pass must have answered everything from cache *)
        let s = Serve.Engine.metrics eng in
        let hits, lookups =
          List.fold_left
            (fun (h, n) ((_, c) : string * Serve.Metrics.stage_counters) ->
              (h + c.hits, n + c.hits + c.misses))
            (0, 0) s.stages
        in
        Alcotest.(check bool)
          (Fmt.str "hit rate %d/%d >= 1/2" hits lookups)
          true
          (2 * hits >= lookups));
    t "engine: textual noise misses parse but hits the pass stages" (fun () ->
        let _, src = List.hd (corpus_sources ()) in
        let opts = Dpopt.Pipeline.make ~threshold:32 ~cfactor:2 () in
        let eng = Serve.Engine.create () in
        let rq =
          {
            Serve.Engine.rq_file = "noise.cu";
            rq_src = src;
            rq_opts = opts;
            rq_profile = None;
          }
        in
        let r1 = Serve.Engine.compile eng rq in
        let before = Serve.Engine.metrics eng in
        (* same program, different bytes: trailing blank lines *)
        let r2 = Serve.Engine.compile eng { rq with rq_src = src ^ "\n\n" } in
        let after = Serve.Engine.metrics eng in
        Alcotest.(check bool) "same response" true (r1 = r2);
        let count p (s : Serve.Metrics.snapshot) =
          List.fold_left
            (fun n ((name, c) : string * Serve.Metrics.stage_counters) ->
              if String.length name >= 5 && String.sub name 0 5 = "pass:" then
                n + p c
              else n)
            0 s.stages
        in
        let hits (c : Serve.Metrics.stage_counters) = c.hits in
        let misses (c : Serve.Metrics.stage_counters) = c.misses in
        Alcotest.(check int) "no new pass misses" (count misses before)
          (count misses after);
        Alcotest.(check bool) "pass hits grew" true
          (count hits after > count hits before));
    t "engine: rejection carries the CLI's one-line diagnostic" (fun () ->
        let eng = Serve.Engine.create () in
        let compile src =
          Serve.Engine.compile eng
            {
              Serve.Engine.rq_file = "job-1";
              rq_src = src;
              rq_opts = Dpopt.Pipeline.none;
              rq_profile = None;
            }
        in
        (match compile "__global__ void k(int* d) { d[0] = ; }" with
        | Ok _ -> Alcotest.fail "parse error accepted"
        | Error d ->
            Alcotest.(check bool) (d ^ " carries loc") true
              (String.starts_with ~prefix:"job-1:1:" d));
        (match compile "__global__ void k(int* d) { x = 1; }" with
        | Ok _ -> Alcotest.fail "type error accepted"
        | Error d ->
            Alcotest.(check bool)
              (d ^ " is a loc-bearing type error")
              true
              (String.starts_with ~prefix:"job-1:1:" d
              && contains ~sub:"type error:" d));
        (* unknown exceptions are internal and must re-raise, not render *)
        Alcotest.(check bool) "unknown exn not rendered" true
          (Serve.Errors.render ~file:"f" Exit = None));
    Alcotest.test_case "traffic: warm pass >= 3x cold, byte-identical" `Slow
      (fun () ->
        let r =
          Serve.Traffic.replay ~jobs:2
            { Serve.Traffic.default with requests = 200 }
        in
        Alcotest.(check int) "requests" 200 r.total;
        Alcotest.(check int) "no rejections" 0 r.rejected;
        Alcotest.(check bool) "byte-identical" true r.identical;
        Alcotest.(check bool)
          (Fmt.str "warm hit rate %.2f >= 0.5" r.warm_hit_rate)
          true
          (r.warm_hit_rate >= 0.5);
        Alcotest.(check bool)
          (Fmt.str "speedup %.1fx >= 3x (cold %.3fs warm %.3fs)" r.speedup
             r.cold_s r.warm_s)
          true (r.speedup >= 3.0);
        (* the run's metrics artifact, same schema dpoptd --json writes *)
        let j = Serve.Traffic.json_of_run r in
        List.iter
          (fun needle ->
            Alcotest.(check bool) (needle ^ " in json") true
              (contains ~sub:needle j))
          [ "\"hit_rate\""; "\"p50_ms\""; "\"p99_ms\""; "\"speedup\"" ];
        Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
            Out_channel.output_string oc j;
            Out_channel.output_char oc '\n'));
    t "traffic: stream is deterministic in its seed" (fun () ->
        let s1 = Serve.Traffic.requests Serve.Traffic.default in
        let s2 = Serve.Traffic.requests Serve.Traffic.default in
        let s3 =
          Serve.Traffic.requests { Serve.Traffic.default with seed = 43 }
        in
        Alcotest.(check bool) "same seed, same stream" true (s1 = s2);
        Alcotest.(check bool) "different seed, different stream" true
          (s1 <> s3));
    t "cli: dpoptc rejects bad input with one line, no backtrace" (fun () ->
        let run_cli args =
          let err = Filename.temp_file "dpoptc" ".err" in
          let code =
            Sys.command
              (Fmt.str "%s/dpoptc.exe %s >/dev/null 2>%s" (bin_dir ()) args
                 (Filename.quote err))
          in
          let lines = In_channel.with_open_text err In_channel.input_lines in
          Sys.remove err;
          (code, lines)
        in
        let bad kind contents expect_infix =
          let f = Filename.temp_file "dpoptc_bad" ".cu" in
          Out_channel.with_open_text f (fun oc ->
              Out_channel.output_string oc contents);
          let code, lines = run_cli (Filename.quote f) in
          Sys.remove f;
          Alcotest.(check int) (kind ^ " exit code") 1 code;
          (match lines with
          | [ line ] ->
              Alcotest.(check bool)
                (Fmt.str "%s diagnostic %S mentions %S" kind line expect_infix)
                true
                (contains ~sub:expect_infix line)
          | _ ->
              Alcotest.failf "%s: expected one diagnostic line, got %d" kind
                (List.length lines));
          List.iter
            (fun l ->
              if
                contains ~sub:"Raised at" l
                || contains ~sub:"Fatal error" l
              then Alcotest.failf "%s leaked a backtrace: %s" kind l)
            lines
        in
        bad "parse error" "__global__ void k(int* d) { d[0] = ; }"
          "error: expected expression";
        bad "type error" "__global__ void k(int* d) {\n  x = 1;\n}"
          "type error:";
        bad "unterminated" "int f(" "error:";
        (* a directory passes cmdliner's existence check but cannot be read *)
        let code, lines = run_cli "/" in
        Alcotest.(check int) "directory exit code" 1 code;
        Alcotest.(check int) "directory one line" 1 (List.length lines));
    t "cli: dpoptd rejects bad jobs and keeps the batch going" (fun () ->
        let good = Filename.temp_file "dpoptd_ok" ".cu" in
        Out_channel.with_open_text good (fun oc ->
            Out_channel.output_string oc
              "__global__ void k(int* d) { d[0] = 1; }");
        let badf = Filename.temp_file "dpoptd_bad" ".cu" in
        Out_channel.with_open_text badf (fun oc ->
            Out_channel.output_string oc "int f(");
        let out = Filename.temp_file "dpoptd" ".out" in
        let code =
          Sys.command
            (Fmt.str "%s/dpoptd.exe %s %s >%s 2>/dev/null" (bin_dir ())
               (Filename.quote good) (Filename.quote badf) (Filename.quote out))
        in
        let stdout = In_channel.with_open_text out In_channel.input_lines in
        List.iter Sys.remove [ good; badf; out ];
        Alcotest.(check int) "exit 1 on any rejection" 1 code;
        Alcotest.(check bool) "good job still compiled" true
          (List.exists
             (fun l -> contains ~sub:"ok [CDP]" l)
             stdout));
  ]
