(* Eligibility analysis tests (paper Section III-C and the structural
   requirements of the aggregation codegen). *)

open Minicu
open Dpopt

let t name f = Alcotest.test_case name `Quick f

let prog src = Parser.program src

let check_verdict name expected got =
  match (expected, got) with
  | `Eligible, Eligibility.Eligible -> ()
  | `Ineligible, Eligibility.Ineligible _ -> ()
  | `Eligible, Eligibility.Ineligible r ->
      Alcotest.failf "%s: expected eligible, got ineligible: %s" name r
  | `Ineligible, Eligibility.Eligible ->
      Alcotest.failf "%s: expected ineligible, got eligible" name

(* A parent around [child_body]'s kernel; the launch shape matches the
   canonical CSR idiom so thresholding's pattern recovery also applies. *)
let nested ~child_body =
  Fmt.str
    {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  %s
}

__global__ void parent(int* rows, int* data, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int deg = rows[v + 1] - rows[v];
    if (deg > 0) {
      child<<<(deg + 31) / 32, 32>>>(data, rows[v], deg);
    }
  }
}
|}
    child_body

let thresholding_verdict src =
  let p = prog src in
  Eligibility.thresholding_child p (Ast.find_func_exn p "child")

let find_kernel p name =
  List.find (fun (f : Ast.func) -> f.f_name = name) p

let suite =
  [
    t "aggregation refuses recursive nesting" (fun () ->
        (* A self-recursive launch site: the aggregated clone of the child
           body would launch the buffer-extended parent with the original
           argument list (caught as ill-typed pipeline output by the
           serve-engine corpus test before this check existed). *)
        let p =
          prog
            {|
__global__ void relax(int* dist, int n, int depth) {
  int i = threadIdx.x;
  if (i == 0 && depth < 8) {
    relax<<<1, blockDim.x>>>(dist, n, depth + 1);
  }
}
|}
        in
        check_verdict "self-recursive site" `Ineligible
          (Eligibility.aggregation_site ~prog:p (find_kernel p "relax")
             ~child:"relax");
        (* mutual recursion: child launches the parent back *)
        let m =
          prog
            {|
__global__ void pong(int* d, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i == 0 && n > 0) {
    ping<<<1, 32>>>(d, n - 1);
  }
}
__global__ void ping(int* d, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i == 0 && n > 0) {
    pong<<<1, 32>>>(d, n - 1);
  }
}
|}
        in
        check_verdict "mutually recursive site" `Ineligible
          (Eligibility.aggregation_site ~prog:m (find_kernel m "ping")
             ~child:"pong");
        (* whole-pipeline regression: CDP+A on the self-recursive program
           must refuse the site and still produce well-typed output *)
        let opts =
          Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Grid ()
        in
        let r = Dpopt.Pipeline.run ~opts p in
        Alcotest.(check bool) "site reported as skipped" true
          (List.exists
             (fun (sr : Dpopt.Aggregation.site_report) ->
               (not sr.sr_transformed) && sr.sr_parent = "relax")
             r.agg_reports));
    (* ---- thresholding_child ---- *)
    t "plain data-parallel child is eligible" (fun () ->
        check_verdict "plain"
          `Eligible
          (thresholding_verdict
             (nested ~child_body:"if (i < n) { data[base + i] = i; }")));
    t "__syncthreads makes the child ineligible" (fun () ->
        check_verdict "sync" `Ineligible
          (thresholding_verdict
             (nested
                ~child_body:
                  "data[base + i] = i; __syncthreads(); data[base + i] = \
                   data[base + i] + 1;")));
    t "__syncwarp makes the child ineligible" (fun () ->
        check_verdict "syncwarp" `Ineligible
          (thresholding_verdict
             (nested ~child_body:"__syncwarp(); data[base + i] = i;")));
    t "warp collectives make the child ineligible" (fun () ->
        check_verdict "warp collective" `Ineligible
          (thresholding_verdict
             (nested ~child_body:"data[base + i] = warp_sum(i);")));
    t "shared memory makes the child ineligible" (fun () ->
        check_verdict "shared" `Ineligible
          (thresholding_verdict
             (nested
                ~child_body:
                  "__shared__ int buf[32]; buf[threadIdx.x] = i; data[base + \
                   i] = buf[threadIdx.x];")));
    t "barrier inside a called device function is found transitively"
      (fun () ->
        let src =
          {|
__device__ int helper(int x) {
  __syncthreads();
  return x + 1;
}

__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { data[base + i] = helper(i); }
}

__global__ void parent(int* data, int deg) {
  child<<<(deg + 31) / 32, 32>>>(data, 0, deg);
}
|}
        in
        check_verdict "transitive" `Ineligible (thresholding_verdict src));
    t "ineligible site is reported and left unchanged by the pass" (fun () ->
        let src =
          nested ~child_body:"__syncwarp(); data[base + i] = i;"
        in
        let r = Thresholding.transform ~opts:{ threshold = 4 } (prog src) in
        (match r.reports with
        | [ rep ] ->
            Alcotest.(check bool) "not transformed" false rep.sr_transformed;
            Alcotest.(check string) "child" "child" rep.sr_child
        | reps ->
            Alcotest.failf "expected one report, got %d" (List.length reps));
        Alcotest.(check bool) "no serial version generated" true
          (Ast.find_func r.prog "child_serial" = None));
    (* ---- coarsening_child ---- *)
    t "coarsening accepts even barrier-heavy children" (fun () ->
        let p =
          prog
            (nested
               ~child_body:
                 "__shared__ int buf[32]; __syncthreads(); data[base + i] = \
                  i;")
        in
        check_verdict "coarsening" `Eligible
          (Eligibility.coarsening_child p (Ast.find_func_exn p "child")));
    (* ---- aggregation_site ---- *)
    t "straight-line launch site is aggregable" (fun () ->
        let p = prog Test_helpers.nested_src in
        check_verdict "straight-line" `Eligible
          (Eligibility.aggregation_site
             (Ast.find_func_exn p "parent")
             ~child:"child"));
    t "launch inside a for loop is not aggregable" (fun () ->
        let p =
          prog
            {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { data[base + i] = i; }
}

__global__ void parent(int* data, int n) {
  for (int j = 0; j < n; j = j + 1) {
    child<<<(n + 31) / 32, 32>>>(data, j, n);
  }
}
|}
        in
        let parent = Ast.find_func_exn p "parent" in
        Alcotest.(check bool) "launch_in_loop" true
          (Eligibility.launch_in_loop ~kernel:"child" parent.f_body);
        check_verdict "loop" `Ineligible
          (Eligibility.aggregation_site parent ~child:"child"));
    t "launch inside a while loop is not aggregable" (fun () ->
        let p =
          prog
            {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { data[base + i] = i; }
}

__global__ void parent(int* data, int n) {
  int j = 0;
  while (j < n) {
    child<<<(n + 31) / 32, 32>>>(data, j, n);
    j = j + 1;
  }
}
|}
        in
        check_verdict "while" `Ineligible
          (Eligibility.aggregation_site
             (Ast.find_func_exn p "parent")
             ~child:"child"));
    t "early return in the parent is not aggregable" (fun () ->
        let p =
          prog
            {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { data[base + i] = i; }
}

__global__ void parent(int* data, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v >= n) { return; }
  child<<<(n + 31) / 32, 32>>>(data, v, n);
}
|}
        in
        check_verdict "early return" `Ineligible
          (Eligibility.aggregation_site
             (Ast.find_func_exn p "parent")
             ~child:"child"));
    t "launch guarded by a plain if remains aggregable" (fun () ->
        let p =
          prog
            {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { data[base + i] = i; }
}

__global__ void parent(int* data, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    child<<<(n + 31) / 32, 32>>>(data, v, n);
  }
}
|}
        in
        check_verdict "guarded" `Eligible
          (Eligibility.aggregation_site
             (Ast.find_func_exn p "parent")
             ~child:"child"));
    (* ---- launch-idiom recovery through the thresholding pass ---- *)
    t "all four ceiling-division idioms recover the exact thread count"
      (fun () ->
        List.iteri
          (fun n grid ->
            let src =
              Fmt.str
                {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { data[base + i] = i; }
}

__global__ void parent(int* data, int deg) {
  child<<<%s, 32>>>(data, 0, deg);
}
|}
                grid
            in
            let r = Thresholding.transform (prog src) in
            match r.reports with
            | [ rep ] ->
                Alcotest.(check bool)
                  (Fmt.str "idiom %d transformed" n)
                  true rep.sr_transformed;
                Alcotest.(check string)
                  (Fmt.str "idiom %d reason" n)
                  "ceiling-division pattern recovered" rep.sr_reason
            | reps ->
                Alcotest.failf "idiom %d: expected one report, got %d" n
                  (List.length reps))
          [
            "(deg + 31) / 32";
            "(deg - 1) / 32 + 1";
            "deg / 32 + (deg % 32 == 0 ? 0 : 1)";
            "(int) ceil((float) deg / 32)";
          ]);
    t "non-idiomatic grid falls back to grid*block total" (fun () ->
        let src =
          {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { data[base + i] = i; }
}

__global__ void parent(int* data, int deg) {
  child<<<deg * 2 + 1, 32>>>(data, 0, deg);
}
|}
        in
        let r = Thresholding.transform (prog src) in
        match r.reports with
        | [ rep ] ->
            Alcotest.(check bool) "still transformed" true rep.sr_transformed;
            Alcotest.(check string) "fallback reason"
              "fallback: grid*block total" rep.sr_reason
        | reps ->
            Alcotest.failf "expected one report, got %d" (List.length reps));
  ]
