(* Scheduler behavior tests: launch congestion, SM utilization, followups,
   and the launch subsystem's accounting. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

let device ?(cfg = Config.test_config) src =
  let dev = Device.create ~cfg () in
  Device.load_program dev (Minicu.Parser.program src);
  dev

(* A parent whose threads each launch one tiny child. *)
let fanout_src =
  {|
__global__ void child(int* o) {
  o[blockIdx.x] = o[blockIdx.x] + 0;
}
__global__ void parent(int* o, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    child<<<1, 32>>>(o);
  }
}
|}

let run_fanout ~cfg n =
  let dev = device ~cfg fanout_src in
  let out = Device.alloc_int_zeros dev 64 in
  Device.launch dev ~kernel:"parent"
    ~grid:((n + 31) / 32, 1, 1)
    ~block:(32, 1, 1)
    ~args:[ Value.Ptr out; Value.Int n ];
  let time = Device.sync dev in
  (time, Device.metrics dev)

let suite =
  [
    t "launch congestion grows superlinearly with launch count" (fun () ->
        let cfg = { Config.default with launch_service_interval = 500 } in
        let t1, m1 = run_fanout ~cfg 32 in
        let t2, m2 = run_fanout ~cfg 512 in
        Alcotest.(check int) "launch counts" 32 m1.device_launches;
        Alcotest.(check int) "launch counts" 512 m2.device_launches;
        (* 16x the launches should be much more than 16x slower overall
           because the queue serializes them *)
        Alcotest.(check bool) "congestion" true (t2 > t1 *. 8.0));
    t "pending-launch depth is tracked" (fun () ->
        let cfg = { Config.default with launch_service_interval = 500 } in
        let _, m = run_fanout ~cfg 256 in
        Alcotest.(check bool) "pending depth > 10" true
          (m.max_pending_launches > 10));
    t "a burst of n simultaneous launches peaks at n-1 pending" (fun () ->
        (* drive the grid-management unit directly: 5 launches issued at
           t=0 queue behind one service slot each; the launch being
           serviced is not pending behind itself, so the last one sees
           exactly 4 ahead of it *)
        let cfg = { Config.test_config with launch_service_interval = 100 } in
        let sched = Sched.create cfg (Memory.create ()) (Metrics.create ()) in
        let stream = Sched.default_stream sched in
        let readies =
          List.init 5 (fun _ ->
              Sched.process_device_launch sched stream ~issue:0.0)
        in
        Alcotest.(check int) "max pending" 4
          sched.Sched.metrics.max_pending_launches;
        (* service slots are spaced by the interval *)
        Alcotest.(check bool) "readies strictly increase" true
          (List.sort_uniq compare readies = readies
          && List.length readies = 5));
    t "service interval drives the queue" (fun () ->
        let slow =
          { Config.test_config with launch_service_interval = 1000 }
        in
        let fast = { Config.test_config with launch_service_interval = 10 } in
        let t_slow, _ = run_fanout ~cfg:slow 128 in
        let t_fast, _ = run_fanout ~cfg:fast 128 in
        Alcotest.(check bool) "slower queue, slower run" true
          (t_slow > t_fast *. 2.0));
    t "more SMs means faster independent blocks" (fun () ->
        let src =
          "__global__ void k(int* o) { int s = 0; for (int i = 0; i < 500; \
           i++) { s = s + o[i % 8]; } o[blockIdx.x % 8] = s; }"
        in
        let run num_sms =
          let dev = device ~cfg:{ Config.test_config with num_sms } src in
          let out = Device.alloc_int_zeros dev 8 in
          Device.launch dev ~kernel:"k" ~grid:(32, 1, 1) ~block:(32, 1, 1)
            ~args:[ Value.Ptr out ];
          Device.sync dev
        in
        let t1 = run 1 and t16 = run 16 in
        Alcotest.(check bool) "parallel speedup" true (t1 > t16 *. 4.0));
    t "host launches bypass the device launch queue" (fun () ->
        let dev =
          device
            ~cfg:{ Config.test_config with launch_service_interval = 100000 }
            "__global__ void k(int* o) { o[blockIdx.x] = 1; }"
        in
        let out = Device.alloc_int_zeros dev 4 in
        for _ = 1 to 4 do
          Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(1, 1, 1)
            ~args:[ Value.Ptr out ]
        done;
        let time = Device.sync dev in
        let m = Device.metrics dev in
        Alcotest.(check int) "host launches" 4 m.host_launches;
        Alcotest.(check int) "no device launches" 0 m.device_launches;
        Alcotest.(check bool) "unaffected by device queue interval" true
          (time < 50000.0));
    t "grid completion runs host followup" (fun () ->
        (* hand-build a program whose kernel has a host followup that
           launches a second kernel, as grid-granularity aggregation does *)
        let base =
          Minicu.Parser.program
            {|
__global__ void second(int* o) { o[1] = o[0] + 5; }
__global__ void first(int* o) { o[0] = 42; }
|}
        in
        let first = Minicu.Ast.find_func_exn base "first" in
        let followup =
          [
            Minicu.Ast.stmt
              (Minicu.Ast.Launch
                 {
                   l_kernel = "second";
                   l_grid = Minicu.Ast.Int_lit 1;
                   l_block = Minicu.Ast.Int_lit 1;
                   l_args = [ Minicu.Ast.Var "o" ];
                 });
          ]
        in
        let prog =
          Minicu.Ast.replace_func base
            { first with f_host_followup = Some followup }
        in
        let dev = Device.create ~cfg:Config.test_config () in
        Device.load_program dev prog;
        let out = Device.alloc_int_zeros dev 2 in
        Device.launch dev ~kernel:"first" ~grid:(1, 1, 1) ~block:(1, 1, 1)
          ~args:[ Value.Ptr out ];
        ignore (Device.sync dev);
        Alcotest.(check (array int)) "followup ran after grid" [| 42; 47 |]
          (Device.read_ints dev out 2);
        Alcotest.(check int) "followup used host launch path" 2
          (Device.metrics dev).host_launches);
    t "simulated clock is monotonic across syncs" (fun () ->
        let dev = device "__global__ void k(int* o) { o[0] = o[0] + 1; }" in
        let out = Device.alloc_int_zeros dev 1 in
        let times =
          List.init 3 (fun _ ->
              Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(1, 1, 1)
                ~args:[ Value.Ptr out ];
              Device.sync dev)
        in
        Alcotest.(check bool) "monotonic" true
          (List.sort compare times = times && List.length (List.sort_uniq compare times) = 3);
        Alcotest.(check (array int)) "all three ran" [| 3 |]
          (Device.read_ints dev out 1));
    t "launch accounting separates breakdown categories" (fun () ->
        let _, m = run_fanout ~cfg:Config.default 128 in
        Alcotest.(check bool) "parent work measured" true
          (m.breakdown.parent_cycles > 0.0);
        Alcotest.(check bool) "child work measured" true
          (m.breakdown.child_cycles > 0.0);
        Alcotest.(check bool) "launch busy measured" true
          (m.breakdown.launch_cycles > 0.0);
        Alcotest.(check (float 0.0)) "no aggregation logic in plain CDP" 0.0
          m.breakdown.agg_cycles);
    t "auto params are allocated and appended" (fun () ->
        let dev = Device.create ~cfg:Config.test_config () in
        let prog =
          Minicu.Parser.program
            "__global__ void k(int* o, int* extra) { extra[threadIdx.x] = 7; \
             o[threadIdx.x] = extra[threadIdx.x]; }"
        in
        Device.load_program dev prog
          ~auto_params:
            [
              ( "k",
                [
                  {
                    Device.ap_name = "extra";
                    ap_elems =
                      (fun ~grid:(gx, _, _) ~block:(bx, _, _) -> gx * bx);
                  };
                ] );
            ];
        let out = Device.alloc_int_zeros dev 4 in
        (* note: only the user arg is passed; the runtime adds [extra] *)
        Device.launch dev ~kernel:"k" ~grid:(1, 1, 1) ~block:(4, 1, 1)
          ~args:[ Value.Ptr out ];
        ignore (Device.sync dev);
        Alcotest.(check (array int)) "auto buffer worked" [| 7; 7; 7; 7 |]
          (Device.read_ints dev out 4));
  ]

let trace_suite =
  [
    t "trace is off by default and complete when enabled" (fun () ->
        let dev = device fanout_src in
        let out = Device.alloc_int_zeros dev 64 in
        Device.launch dev ~kernel:"parent" ~grid:(1, 1, 1) ~block:(32, 1, 1)
          ~args:[ Value.Ptr out; Value.Int 8 ];
        ignore (Device.sync dev);
        Alcotest.(check int) "no events when disabled" 0
          (List.length (Device.trace_events dev));
        Device.enable_trace dev;
        Device.launch dev ~kernel:"parent" ~grid:(1, 1, 1) ~block:(32, 1, 1)
          ~args:[ Value.Ptr out; Value.Int 8 ];
        ignore (Device.sync dev);
        let evs = Device.trace_events dev in
        let launches =
          List.length
            (List.filter
               (function Trace.Grid_launched _ -> true | _ -> false)
               evs)
        in
        let completions =
          List.length
            (List.filter
               (function Trace.Grid_completed _ -> true | _ -> false)
               evs)
        in
        (* parent + 8 children *)
        Alcotest.(check int) "9 grids launched" 9 launches;
        Alcotest.(check int) "9 grids completed" 9 completions;
        let summaries, orphans = Trace.summarize evs in
        Alcotest.(check int) "9 summaries" 9 (List.length summaries);
        Alcotest.(check int) "no orphans" 0 (List.length orphans);
        List.iter
          (fun (s : Trace.grid_summary) ->
            Alcotest.(check bool) "finish after ready" true
              (s.g_finish >= s.g_info.t_ready);
            Alcotest.(check bool) "queue wait non-negative" true
              (s.g_info.t_ready >= s.g_info.t_issue))
          summaries;
        Device.clear_trace dev;
        Alcotest.(check int) "cleared" 0
          (List.length (Device.trace_events dev)));
    t "device-launch queue waits grow down the chain" (fun () ->
        let cfg = { Config.test_config with launch_service_interval = 100 } in
        let dev = device ~cfg fanout_src in
        Device.enable_trace dev;
        let out = Device.alloc_int_zeros dev 64 in
        Device.launch dev ~kernel:"parent" ~grid:(2, 1, 1) ~block:(32, 1, 1)
          ~args:[ Value.Ptr out; Value.Int 64 ];
        ignore (Device.sync dev);
        let waits =
          List.filter_map
            (function
              | Trace.Grid_launched i when not i.t_from_host ->
                  Some (i.t_ready -. i.t_issue)
              | _ -> None)
            (Device.trace_events dev)
        in
        Alcotest.(check int) "64 device launches traced" 64
          (List.length waits);
        Alcotest.(check bool) "congestion visible in waits" true
          (List.fold_left Float.max 0.0 waits
          > 10.0 *. List.fold_left Float.min infinity waits))
  ]

let suite = suite @ trace_suite
