(* Event_queue behavior: min-heap ordering, deterministic tie-breaking,
   and the pop path clearing vacated slots so popped payloads are not
   retained by the backing array. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

(* deterministic pseudo-random permutation of [0 .. n-1] *)
let permutation n =
  let a = Array.init n (fun i -> i) in
  let state = ref 123456789 in
  let next bound =
    state := (!state * 1103515245) + 12345;
    abs !state mod bound
  in
  for i = n - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let drain q =
  let rec go acc =
    if Event_queue.is_empty q then List.rev acc
    else go (Event_queue.pop q :: acc)
  in
  go []

let suite =
  [
    t "pops come out sorted by time" (fun () ->
        let q = Event_queue.create () in
        let perm = permutation 200 in
        Array.iter (fun i -> Event_queue.push q (float_of_int i) i) perm;
        Alcotest.(check int) "length" 200 (Event_queue.length q);
        let popped = drain q in
        Alcotest.(check (list int)) "sorted by key"
          (List.init 200 Fun.id)
          (List.map snd popped));
    t "equal times pop in insertion order" (fun () ->
        let q = Event_queue.create () in
        List.iter
          (fun (time, v) -> Event_queue.push q time v)
          [ (2.0, "d"); (1.0, "a"); (1.0, "b"); (2.0, "e"); (1.0, "c") ];
        Alcotest.(check (list string)) "ties in insertion order"
          [ "a"; "b"; "c"; "d"; "e" ]
          (List.map snd (drain q)));
    t "interleaved push/pop matches a sorted reference" (fun () ->
        let q = Event_queue.create () in
        (* model: sorted association list of (time, seq) -> value *)
        let model = ref [] in
        let seq = ref 0 in
        let push time v =
          Event_queue.push q time v;
          incr seq;
          model :=
            List.sort compare (((time, !seq), v) :: !model)
        in
        let pop () =
          match !model with
          | [] -> assert false
          | (_, expect) :: rest ->
              model := rest;
              let _, got = Event_queue.pop q in
              Alcotest.(check int) "pop agrees with model" expect got
        in
        let perm = permutation 60 in
        Array.iteri
          (fun step i ->
            push (float_of_int (i mod 17)) i;
            if step mod 3 = 2 then pop ())
          perm;
        while not (Event_queue.is_empty q) do
          pop ()
        done);
    t "peek_time reports the minimum without removing" (fun () ->
        let q = Event_queue.create () in
        Alcotest.(check (option (float 0.0))) "empty" None
          (Event_queue.peek_time q);
        Event_queue.push q 5.0 'x';
        Event_queue.push q 3.0 'y';
        Alcotest.(check (option (float 0.0))) "min" (Some 3.0)
          (Event_queue.peek_time q);
        Alcotest.(check int) "nothing removed" 2 (Event_queue.length q));
    t "pop clears the vacated slot (popped payload is collectable)"
      (fun () ->
        let q = Event_queue.create () in
        let w = Weak.create 1 in
        (* allocate, push and pop inside an opaque closure so no local of
           this frame keeps the payload reachable afterwards *)
        (Sys.opaque_identity (fun () ->
             let payload = Bytes.make 64 'p' in
             Weak.set w 0 (Some payload);
             Event_queue.push q 1.0 payload;
             (* force the grow path too: the backing array must not retain
                the payload in its filler slots either *)
             for i = 2 to 50 do
               Event_queue.push q (float_of_int i) Bytes.empty
             done;
             let _, p = Event_queue.pop q in
             assert (Bytes.length p = 64)))
          ();
        Gc.full_major ();
        Alcotest.(check bool) "queue still holds later events" false
          (Event_queue.is_empty q);
        Alcotest.(check bool) "popped payload was collected" true
          (Weak.get w 0 = None));
    t "emptying the queue releases the last payload" (fun () ->
        let q = Event_queue.create () in
        let w = Weak.create 1 in
        (Sys.opaque_identity (fun () ->
             let payload = Bytes.make 64 'q' in
             Weak.set w 0 (Some payload);
             Event_queue.push q 1.0 payload;
             ignore (Event_queue.pop q)))
          ();
        Gc.full_major ();
        Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
        Alcotest.(check bool) "payload collected" true (Weak.get w 0 = None));
  ]
