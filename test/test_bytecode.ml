(* Cross-engine differential suite: the bytecode VM must be
   observationally identical to the closure interpreter.

   Four layers, ordered by how bugs have historically surfaced:

     1. golden disassembly of the corpus fixtures — ISA/encoding changes
        become reviewable diffs (CORPUS_PROMOTE=1 rewrites);
     2. hand-written edge-semantics fixtures (NaN/inf, division by zero,
        checked shared-array OOB, atomics ordering) — where unboxing bugs
        hide: both engines must produce bit-identical memory, metrics,
        and *exceptions*;
     3. sanitizer parity — dpcheck's dynamic findings (race reports, OOB)
        must be byte-identical under both engines;
     4. the benchmark matrix — every Table I benchmark under all 8 pass
        combos, plus the full Small registry under the complete pipeline,
        asserting bit-identical memory dumps, launch metrics, and
        simulated time.

   Comparisons go through a printed representation in which every float
   (memory values, metric cycle counters, simulated time) is rendered as
   its IEEE-754 bit pattern, so NaNs compare equal to themselves and
   nothing is lost to rounding. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* ------------------------------------------------------------------ *)
(* Bit-exact observation reprs                                         *)
(* ------------------------------------------------------------------ *)

let value_repr : Value.t -> string = function
  | Value.Float f -> Fmt.str "F:%Lx" (Int64.bits_of_float f)
  | v -> Fmt.str "%a" Value.pp v

let dump_repr (dump : Value.t array list) =
  String.concat "\n"
    (List.mapi
       (fun i buf ->
         Fmt.str "buf%d: %s" i
           (String.concat " " (Array.to_list (Array.map value_repr buf))))
       dump)

let metrics_repr (m : Metrics.t) =
  let b = m.Metrics.breakdown in
  let bits = Int64.bits_of_float in
  Fmt.str
    "parent=%Lx child=%Lx agg=%Lx disagg=%Lx launch=%Lx makespan=%Lx \
     grids=%d dev=%d host=%d blocks=%d threads=%d pend=%d ser=%d races=%d \
     oob=%d reports=%a"
    (bits b.Metrics.parent_cycles)
    (bits b.Metrics.child_cycles)
    (bits b.Metrics.agg_cycles)
    (bits b.Metrics.disagg_cycles)
    (bits b.Metrics.launch_cycles)
    (bits m.Metrics.makespan) m.Metrics.grids_launched
    m.Metrics.device_launches m.Metrics.host_launches
    m.Metrics.blocks_executed m.Metrics.threads_executed
    m.Metrics.max_pending_launches m.Metrics.serialized_launches
    m.Metrics.races_detected m.Metrics.oob_detected
    Fmt.(Dump.list string)
    m.Metrics.race_reports

let observe_device dev =
  Fmt.str "time=%Lx\n%s\n%s"
    (Int64.bits_of_float (Device.time dev))
    (metrics_repr (Device.metrics dev))
    (dump_repr (Device.dump_memory dev ~first:(Device.buffer_count dev)))

(* ------------------------------------------------------------------ *)
(* Layer 1: golden disassembly of corpus fixtures                      *)
(* ------------------------------------------------------------------ *)

(* Representative shapes: arithmetic + casts, barriers in loops, warp
   collectives, control flow, device-function calls, float builtins,
   rotated loops, dim3 manipulation, a nested launch, and a divergent
   barrier. The encoding is mode-dependent, so the loops fixture is also
   pinned under the checked (sanitizer) configuration. *)
let disasm_fixtures =
  [
    ("atomics", false);
    ("barriers", false);
    ("collectives", false);
    ("controlflow", false);
    ("device_calls", false);
    ("dim3s", false);
    ("floats", false);
    ("loops", false);
    ("loops_checked", true);
    ("nested", false);
    ("bad_divergent_barrier", false);
  ]

let disasm_tests =
  List.map
    (fun (base, checked) ->
      let file =
        (if base = "loops_checked" then "loops" else base) ^ ".minicu"
      in
      t (base ^ ": disassembly matches golden") (fun () ->
          let src =
            Test_corpus.read_file (Filename.concat Test_corpus.corpus_dir file)
          in
          let prog = Minicu.Parser.program ~file src in
          let cfg = { Config.default with check = checked } in
          let asm = Bytecode.disassemble (Bytecode.compile cfg prog) in
          Test_corpus.golden_check ~what:"disassembly" ~fixture:file
            ~golden_name:(base ^ ".disasm") asm))
    disasm_fixtures

(* ------------------------------------------------------------------ *)
(* Layer 2: edge-semantics parity fixtures                             *)
(* ------------------------------------------------------------------ *)

(* Run [src] to completion (or to an exception) under one engine and
   return everything observable: simulated time, metrics, every device
   buffer bit-for-bit — or the raised exception's rendering. *)
let run_engine ~cfg ~grid ~block ~kernel ~mk_args engine src =
  let cfg = { cfg with Config.engine } in
  let dev = Device.create ~cfg () in
  Device.load_program dev (Minicu.Parser.program src);
  let args = mk_args dev in
  match
    Device.launch dev ~kernel ~grid ~block ~args;
    ignore (Device.sync dev)
  with
  | () -> Ok (observe_device dev)
  | exception e -> Error (Printexc.to_string e)

let engine_parity name ?(cfg = Config.test_config) ?(grid = (1, 1, 1))
    ?(block = (1, 1, 1)) ~kernel ~mk_args src =
  t name (fun () ->
      let run = run_engine ~cfg ~grid ~block ~kernel ~mk_args in
      let closure = run Config.Closure src in
      let bytecode = run Config.Bytecode src in
      match (closure, bytecode) with
      | Ok c, Ok b ->
          if c <> b then
            Alcotest.failf "engines diverge:@.--- closure@.%s@.--- bytecode@.%s"
              c b
      | Error c, Error b ->
          if c <> b then
            Alcotest.failf
              "engines raise differently:@.closure:  %s@.bytecode: %s" c b
      | Ok _, Error e ->
          Alcotest.failf "closure completed but bytecode raised: %s" e
      | Error e, Ok _ ->
          Alcotest.failf "bytecode completed but closure raised: %s" e)

let out_ints n dev = [ Value.Ptr (Device.alloc_int_zeros dev n) ]
let out_floats n dev = [ Value.Ptr (Device.alloc_float_zeros dev n) ]

let edge_tests =
  [
    engine_parity "NaN and infinity arithmetic is bit-identical" ~kernel:"k"
      ~mk_args:(out_floats 12)
      {|
__global__ void k(float* o) {
  float z = 0.0;
  float pinf = 1.0 / z;
  float qnan = z / z;
  o[0] = qnan;
  o[1] = pinf;
  o[2] = 0.0 - pinf;
  o[3] = pinf + (0.0 - pinf);
  o[4] = qnan < 1.0 ? 1.0 : 2.0;
  o[5] = qnan == qnan ? 1.0 : 2.0;
  o[6] = min(qnan, 3.0);
  o[7] = max(qnan, 3.0);
  o[8] = sqrt(0.0 - 4.0);
  o[9] = log(0.0);
  o[10] = exp(1000.0);
  o[11] = pinf * 0.0;
}
|};
    engine_parity "negative zero and float cast edges" ~kernel:"k"
      ~mk_args:(out_floats 6)
      {|
__global__ void k(float* o) {
  float nz = 0.0 - 0.0;
  o[0] = nz;
  o[1] = nz == 0.0 ? 1.0 : 2.0;
  o[2] = (float)(int)1.9;
  o[3] = (float)(int)(0.0 - 1.9);
  o[4] = pow(2.0, 0.5);
  o[5] = fabs(nz);
}
|};
    engine_parity "integer division by zero raises identically" ~kernel:"k"
      ~mk_args:(fun dev ->
        [ Value.Ptr (Device.alloc_int_zeros dev 1); Value.Int 0 ])
      "__global__ void k(int* o, int n) { o[0] = 7 / n; }";
    engine_parity "integer modulo by zero raises identically" ~kernel:"k"
      ~mk_args:(fun dev ->
        [ Value.Ptr (Device.alloc_int_zeros dev 1); Value.Int 0 ])
      "__global__ void k(int* o, int n) { o[0] = 7 % n; }";
    engine_parity "checked shared-array OOB store raises at the same loc"
      ~cfg:{ Config.test_config with check = true }
      ~kernel:"k" ~mk_args:(out_ints 4)
      {|
__global__ void k(int* o) {
  __shared__ int s[4];
  s[threadIdx.x + 6] = 1;
  o[0] = s[0];
}
|};
    engine_parity "checked shared-array OOB load raises at the same loc"
      ~cfg:{ Config.test_config with check = true }
      ~kernel:"k" ~mk_args:(out_ints 4)
      {|
__global__ void k(int* o) {
  __shared__ int s[4];
  s[0] = 1;
  o[0] = s[threadIdx.x + 9];
}
|};
    engine_parity "global OOB raises identically (unchecked mode)"
      ~kernel:"k" ~mk_args:(out_ints 4)
      "__global__ void k(int* o) { o[100] = 1; }";
    engine_parity "atomics ordering across a block is deterministic"
      ~block:(64, 1, 1) ~kernel:"k" ~mk_args:(out_ints 8)
      {|
__global__ void k(int* o) {
  atomicAdd(&o[0], threadIdx.x + 1);
  int prev = atomicExch(&o[1], threadIdx.x);
  atomicMax(&o[2], prev);
  int seen = atomicCAS(&o[3], threadIdx.x, threadIdx.x + 1);
  atomicSub(&o[4], seen);
  atomicMin(&o[5], 0 - threadIdx.x);
}
|};
    engine_parity "atomic float accumulation keeps summation order"
      ~block:(32, 1, 1) ~kernel:"k"
      ~mk_args:(fun dev ->
        [ Value.Ptr (Device.alloc_floats dev [| 0.0; 0.1 |]) ])
      {|
__global__ void k(float* o) {
  atomicAdd(&o[0], 0.1 * (float)(threadIdx.x % 3));
}
|};
    engine_parity "divergent barrier resolves identically at runtime"
      ~block:(32, 1, 1) ~kernel:"k" ~mk_args:(out_ints 32)
      {|
__global__ void k(int* o) {
  if (threadIdx.x < 16) {
    o[threadIdx.x] = 1;
    __syncthreads();
  }
  o[0] = 2;
}
|};
    engine_parity "CAS retry loop converges identically" ~block:(16, 1, 1)
      ~kernel:"k" ~mk_args:(out_ints 2)
      {|
__global__ void k(int* o) {
  int seen = o[0];
  while (atomicCAS(&o[0], seen, seen + 1) != seen) {
    seen = o[0];
  }
  atomicAdd(&o[1], 1);
}
|};
  ]

(* ------------------------------------------------------------------ *)
(* Layer 3: sanitizer parity (Racecheck under the bytecode engine)     *)
(* ------------------------------------------------------------------ *)

(* dpoptc --check runs Analysis.Dynamic over the program; its findings
   embed source locations and are deduplicated per address. Both engines
   must report byte-identical findings — epoch tags, locs, and dedup all
   survive the engine switch. *)
let sanitizer_parity base =
  t (base ^ ": dynamic sanitizer findings identical across engines")
    (fun () ->
      let file = base ^ ".minicu" in
      let src =
        Test_corpus.read_file (Filename.concat Test_corpus.corpus_dir file)
      in
      let prog = Minicu.Parser.program ~file src in
      let dirs = Analysis.Dynamic.directives src in
      let findings engine =
        Analysis.Dynamic.run
          ~cfg:{ Config.test_config with engine }
          prog dirs
      in
      let closure = findings Config.Closure in
      let bytecode = findings Config.Bytecode in
      Alcotest.(check (list string)) base closure bytecode;
      if closure = [] then
        Alcotest.failf "%s: expected at least one dynamic finding" base)

let sanitizer_tests =
  List.map sanitizer_parity [ "bad_race_rw"; "bad_race_ww"; "bad_oob_dynamic" ]

(* ------------------------------------------------------------------ *)
(* Layer 4: benchmark matrix                                           *)
(* ------------------------------------------------------------------ *)

let observe_spec engine (spec : Benchmarks.Bench_common.spec) v =
  let cfg = { Config.default with engine } in
  let dev = Benchmarks.Bench_common.load_variant ~cfg spec v in
  let fp = spec.run dev in
  (fp, observe_device dev)

let spec_parity tier (spec : Benchmarks.Bench_common.spec) (vname, v) =
  tier
    (Fmt.str "%s/%s under %s: engines bit-identical" spec.name spec.dataset
       vname)
    (fun () ->
      let fp_c, obs_c = observe_spec Config.Closure spec v in
      let fp_b, obs_b = observe_spec Config.Bytecode spec v in
      if fp_c <> fp_b then
        Alcotest.failf "fingerprints diverge: closure %d, bytecode %d" fp_c
          fp_b;
      if obs_c <> obs_b then
        Alcotest.failf
          "memory/metrics diverge:@.--- closure@.%s@.--- bytecode@.%s" obs_c
          obs_b)

(* Every Table I benchmark (tiny datasets) under all 8 pass combos. *)
let combo_tests =
  let combos =
    List.map (fun (l, o) -> (l, `Cdp o)) (Dpopt.Pipeline.enumerate ())
  in
  List.concat_map
    (fun spec -> List.map (spec_parity slow spec) combos)
    (Test_benchmarks.specs ())

(* The full Small registry under the complete pipeline. *)
let registry_tests =
  let full =
    `Cdp
      (Dpopt.Pipeline.make ~threshold:32 ~cfactor:4
         ~granularity:Dpopt.Aggregation.Block ())
  in
  List.map
    (fun spec -> spec_parity slow spec ("CDP+T+C+A", full))
    (Benchmarks.Registry.all ~size:Benchmarks.Registry.Small ())

let suite =
  disasm_tests @ edge_tests @ sanitizer_tests @ combo_tests @ registry_tests
