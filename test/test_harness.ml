(* Harness tests: stats, variants, tuning, and figure-data sanity on a tiny
   benchmark. *)

let t name f = Alcotest.test_case name `Quick f

let tiny_spec () =
  let kron = Workloads.Graph_gen.kron_dataset ~scale:7 () in
  Benchmarks.Bfs.spec ~dataset:kron

let suite =
  [
    t "geomean" (fun () ->
        Alcotest.(check (float 1e-9)) "pair" 2.0
          (Harness.Stats.geomean [ 1.0; 4.0 ]);
        Alcotest.(check (float 1e-9)) "identity" 3.0
          (Harness.Stats.geomean [ 3.0 ]);
        Alcotest.(check bool) "empty is nan" true
          (Float.is_nan (Harness.Stats.geomean [])));
    t "geomean rejects non-positive samples" (fun () ->
        let raises l =
          match Harness.Stats.geomean l with
          | (_ : float) -> false
          | exception Invalid_argument _ -> true
        in
        Alcotest.(check bool) "zero raises" true (raises [ 2.0; 0.0 ]);
        Alcotest.(check bool) "negative raises" true (raises [ -1.0 ]));
    t "mean min max" (fun () ->
        Alcotest.(check (float 1e-9)) "mean" 2.0
          (Harness.Stats.mean [ 1.0; 2.0; 3.0 ]);
        Alcotest.(check (float 1e-9)) "min" 1.0
          (Harness.Stats.minimum [ 3.0; 1.0; 2.0 ]);
        Alcotest.(check (float 1e-9)) "max" 3.0
          (Harness.Stats.maximum [ 3.0; 1.0; 2.0 ]));
    t "degenerate stats inputs agree on nan" (fun () ->
        (* all four aggregators answer the empty list the same way *)
        List.iter
          (fun (name, f) ->
            Alcotest.(check bool) name true (Float.is_nan (f [])))
          [
            ("mean", Harness.Stats.mean);
            ("minimum", Harness.Stats.minimum);
            ("maximum", Harness.Stats.maximum);
            ("geomean", Harness.Stats.geomean);
          ]);
    t "percentile interpolates between closest ranks" (fun () ->
        (* hand-computed: virtual index p * (n - 1), linear between ranks *)
        let p = Harness.Stats.percentile in
        Alcotest.(check (float 1e-9)) "median of 4" 2.5
          (p [ 1.0; 2.0; 3.0; 4.0 ] 0.5);
        Alcotest.(check (float 1e-9)) "exact rank" 2.0
          (p [ 1.0; 2.0; 3.0; 4.0; 5.0 ] 0.25);
        Alcotest.(check (float 1e-9)) "p90 of 1..10" 9.1
          (p [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] 0.9);
        Alcotest.(check (float 1e-9)) "unsorted input" 9.1
          (p [ 10.; 1.; 9.; 2.; 8.; 3.; 7.; 4.; 6.; 5. ] 0.9);
        Alcotest.(check (float 1e-9)) "singleton, any p" 7.0 (p [ 7.0 ] 0.99);
        Alcotest.(check (float 1e-9)) "p0 is the minimum" 1.0
          (p [ 3.0; 1.0; 2.0 ] 0.0);
        Alcotest.(check (float 1e-9)) "p100 is the maximum" 3.0
          (p [ 3.0; 1.0; 2.0 ] 1.0));
    t "percentile edge cases: nan on empty, never infinity" (fun () ->
        Alcotest.(check bool) "empty is nan" true
          (Float.is_nan (Harness.Stats.percentile [] 0.5));
        (* near-1 fractions stay within the sample range *)
        let v = Harness.Stats.percentile [ 1.0; 2.0 ] 0.999 in
        Alcotest.(check bool) "bounded above" true (v <= 2.0);
        Alcotest.(check bool) "bounded below" true (v >= 1.0);
        let raises p =
          match Harness.Stats.percentile [ 1.0 ] p with
          | (_ : float) -> false
          | exception Invalid_argument _ -> true
        in
        Alcotest.(check bool) "p > 1 raises" true (raises 1.5);
        Alcotest.(check bool) "p < 0 raises" true (raises (-0.1));
        Alcotest.(check bool) "nan p raises" true (raises Float.nan));
    t "speedup rendering" (fun () ->
        Alcotest.(check string) "hundreds" "120x"
          (Harness.Stats.speedup_to_string 120.4);
        Alcotest.(check string) "tens" "43.0x"
          (Harness.Stats.speedup_to_string 43.01);
        Alcotest.(check string) "small" "0.08x"
          (Harness.Stats.speedup_to_string 0.084));
    t "combo labels match the paper's notation" (fun () ->
        let labels =
          List.map Harness.Variant.combo_label Harness.Variant.all_combos
        in
        Alcotest.(check (list string)) "labels"
          [ "CDP"; "CDP+T"; "CDP+C"; "CDP+A"; "CDP+T+C"; "CDP+T+A"; "CDP+C+A";
            "CDP+T+C+A" ]
          labels);
    t "instantiate enables exactly the requested passes" (fun () ->
        let v =
          Harness.Variant.instantiate
            { Harness.Variant.t = true; c = false; a = true }
            Harness.Variant.default_params
        in
        match v with
        | Harness.Variant.Cdp o ->
            Alcotest.(check bool) "T" true (o.thresholding <> None);
            Alcotest.(check bool) "C" false (o.coarsening <> None);
            Alcotest.(check bool) "A" true (o.aggregation <> None)
        | _ -> Alcotest.fail "expected Cdp");
    t "threshold grid respects the largest launch" (fun () ->
        let spec = tiny_spec () in
        let grid = Harness.Tuning.threshold_grid spec in
        List.iter
          (fun thr ->
            Alcotest.(check bool) "bounded" true
              (thr <= spec.max_child_threads))
          grid;
        let beyond = Harness.Tuning.threshold_grid ~beyond_max:true spec in
        Alcotest.(check bool) "beyond adds one over-max point" true
          (List.exists (fun t -> t > spec.max_child_threads) beyond));
    t "param_grid only varies enabled passes" (fun () ->
        let spec = tiny_spec () in
        let grid_a =
          Harness.Tuning.param_grid
            { Harness.Variant.t = false; c = false; a = true }
            spec
        in
        let thresholds =
          List.sort_uniq compare
            (List.map (fun (p : Harness.Variant.params) -> p.threshold) grid_a)
        in
        Alcotest.(check int) "threshold fixed" 1 (List.length thresholds));
    Alcotest.test_case "experiment validates outputs" `Slow (fun () ->
        let spec = tiny_spec () in
        let m = Harness.Experiment.run spec Harness.Variant.No_cdp in
        Alcotest.(check string) "label" "No CDP" m.variant;
        Alcotest.(check bool) "time positive" true (m.time > 0.0));
    Alcotest.test_case "tune returns the minimum of its runs" `Slow (fun () ->
        let spec = tiny_spec () in
        let tuned =
          Harness.Tuning.tune spec { Harness.Variant.t = true; c = false; a = false }
        in
        List.iter
          (fun (_, (m : Harness.Experiment.measurement)) ->
            Alcotest.(check bool) "best is min" true
              (tuned.best.time <= m.time))
          tuned.all_runs);
    Alcotest.test_case "fig9 row speedups are ordered as in the paper" `Slow
      (fun () ->
        let spec = tiny_spec () in
        let row = Harness.Figures.fig9_row ~quick:true spec in
        (* CDP must be the slowest code version (speedups >= 1 for the
           optimized combos) *)
        List.iter
          (fun (label, time, _) ->
            Alcotest.(check bool)
              (label ^ " at least as fast as CDP")
              true
              (time <= row.cdp_time *. 1.05))
          row.combos);
  ]
