(* Trace.summarize on hand-built event lists: normal accounting, grids
   with no dispatched blocks, and orphan events from mid-run tracing. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

let info ?(from_host = false) ?(tenant = 0) ~id ~blocks ~issue ~ready kernel =
  {
    Trace.t_tenant = tenant;
    t_grid_id = id;
    t_kernel = kernel;
    t_blocks = blocks;
    t_from_host = from_host;
    t_issue = issue;
    t_ready = ready;
  }

let launched i = Trace.Grid_launched i

let dispatched ?(tenant = 0) ~id ~sm ~start ~finish () =
  Trace.Block_dispatched
    {
      b_tenant = tenant;
      b_grid_id = id;
      b_sm = sm;
      b_start = start;
      b_finish = finish;
    }

let completed ?(tenant = 0) ~id ~finish () =
  Trace.Grid_completed { c_tenant = tenant; c_grid_id = id; c_finish = finish }

let suite =
  [
    t "summarize accounts blocks, SMs and finish" (fun () ->
        let evs =
          [
            launched (info ~id:0 ~blocks:2 ~issue:0.0 ~ready:10.0 "k");
            dispatched ~id:0 ~sm:0 ~start:10.0 ~finish:40.0 ();
            dispatched ~id:0 ~sm:1 ~start:12.0 ~finish:55.0 ();
            completed ~id:0 ~finish:55.0 ();
          ]
        in
        let summaries, orphans = Trace.summarize evs in
        Alcotest.(check int) "one grid" 1 (List.length summaries);
        Alcotest.(check int) "no orphans" 0 (List.length orphans);
        let s = List.hd summaries in
        Alcotest.(check int) "blocks seen" 2 s.Trace.g_blocks_seen;
        Alcotest.(check int) "sms used" 2 s.g_sms_used;
        Alcotest.(check (float 1e-9)) "first start" 10.0 s.g_first_start;
        Alcotest.(check (float 1e-9)) "finish" 55.0 s.g_finish);
    t "grid with no dispatched blocks finishes at t_ready, not 0" (fun () ->
        (* tracing can stop between a grid's launch and its first block:
           the summary must not report a bogus 0.0 finish *)
        let evs =
          [ launched (info ~id:3 ~blocks:8 ~issue:100.0 ~ready:250.0 "k") ]
        in
        let summaries, orphans = Trace.summarize evs in
        Alcotest.(check int) "one grid" 1 (List.length summaries);
        Alcotest.(check int) "no orphans" 0 (List.length orphans);
        let s = List.hd summaries in
        Alcotest.(check (float 1e-9)) "finish defaults to ready" 250.0
          s.Trace.g_finish;
        Alcotest.(check int) "no blocks" 0 s.g_blocks_seen;
        Alcotest.(check bool) "no first start" true
          (s.g_first_start = infinity));
    t "orphan events are surfaced, in order, not dropped" (fun () ->
        (* tracing enabled mid-run: block/completion events arrive for a
           grid whose launch predates the trace window *)
        let o1 = dispatched ~id:7 ~sm:0 ~start:5.0 ~finish:9.0 () in
        let o2 = completed ~id:7 ~finish:9.0 () in
        let evs =
          [
            o1;
            launched (info ~id:8 ~blocks:1 ~issue:0.0 ~ready:1.0 "k");
            o2;
            dispatched ~id:8 ~sm:0 ~start:1.0 ~finish:2.0 ();
            completed ~id:8 ~finish:2.0 ();
          ]
        in
        let summaries, orphans = Trace.summarize evs in
        Alcotest.(check int) "one summarized grid" 1 (List.length summaries);
        Alcotest.(check int) "grid 8 summarized" 8
          (List.hd summaries).Trace.g_info.t_grid_id;
        Alcotest.(check bool) "orphans in original order" true
          (orphans = [ o1; o2 ]));
    t "summaries are sorted by grid id" (fun () ->
        let evs =
          [
            launched (info ~id:2 ~blocks:1 ~issue:0.0 ~ready:0.0 "b");
            launched (info ~id:1 ~blocks:1 ~issue:0.0 ~ready:0.0 "a");
          ]
        in
        let summaries, _ = Trace.summarize evs in
        Alcotest.(check (list int)) "sorted" [ 1; 2 ]
          (List.map (fun s -> s.Trace.g_info.t_grid_id) summaries));
    t "streams with clashing grid ids are not merged" (fun () ->
        (* two tenants each own a grid 0: per-stream grid-id namespaces
           mean the id alone no longer identifies a grid, and summarize
           must keep the two timelines apart instead of silently folding
           tenant 2's blocks into tenant 1's grid *)
        let evs =
          [
            launched (info ~tenant:1 ~id:0 ~blocks:1 ~issue:0.0 ~ready:5.0 "a");
            launched (info ~tenant:2 ~id:0 ~blocks:2 ~issue:1.0 ~ready:9.0 "b");
            dispatched ~tenant:2 ~id:0 ~sm:0 ~start:9.0 ~finish:30.0 ();
            dispatched ~tenant:1 ~id:0 ~sm:1 ~start:5.0 ~finish:12.0 ();
            dispatched ~tenant:2 ~id:0 ~sm:1 ~start:12.0 ~finish:40.0 ();
            completed ~tenant:1 ~id:0 ~finish:12.0 ();
            completed ~tenant:2 ~id:0 ~finish:40.0 ();
          ]
        in
        let summaries, orphans = Trace.summarize evs in
        Alcotest.(check int) "no orphans" 0 (List.length orphans);
        Alcotest.(check (list (pair int int))) "one summary per stream"
          [ (1, 0); (2, 0) ]
          (List.map
             (fun s -> (s.Trace.g_info.t_tenant, s.g_info.t_grid_id))
             summaries);
        let by_tenant ten =
          List.find (fun s -> s.Trace.g_info.t_tenant = ten) summaries
        in
        Alcotest.(check int) "tenant 1 blocks" 1 (by_tenant 1).g_blocks_seen;
        Alcotest.(check int) "tenant 2 blocks" 2 (by_tenant 2).g_blocks_seen;
        Alcotest.(check (float 1e-9)) "tenant 1 finish" 12.0
          (by_tenant 1).g_finish;
        Alcotest.(check (float 1e-9)) "tenant 2 finish" 40.0
          (by_tenant 2).g_finish;
        Alcotest.(check (list int)) "tenants listed" [ 1; 2 ]
          (Trace.tenants_of summaries));
    t "summaries group per tenant, then by grid id" (fun () ->
        let evs =
          [
            launched (info ~tenant:2 ~id:0 ~blocks:1 ~issue:0.0 ~ready:0.0 "c");
            launched (info ~tenant:1 ~id:1 ~blocks:1 ~issue:0.0 ~ready:0.0 "b");
            launched (info ~tenant:1 ~id:0 ~blocks:1 ~issue:0.0 ~ready:0.0 "a");
          ]
        in
        let summaries, _ = Trace.summarize evs in
        Alcotest.(check (list (pair int int))) "tenant-major order"
          [ (1, 0); (1, 1); (2, 0) ]
          (List.map
             (fun s -> (s.Trace.g_info.t_tenant, s.g_info.t_grid_id))
             summaries));
  ]
