(* Aggregation transformation tests (paper Section V): all four
   granularities, the aggregation threshold, buffer specs, eligibility. *)

open Minicu
open Minicu.Ast
open Dpopt

let t name f = Alcotest.test_case name `Quick f

let transform ?(granularity = Aggregation.Block) ?agg_threshold src =
  Aggregation.transform ~opts:{ granularity; agg_threshold }
    (Parser.program src)

let opts g = Pipeline.make ~granularity:g ()

let suite =
  [
    t "creates the aggregated child kernel" (fun () ->
        let r = transform Test_helpers.nested_src in
        let agg = Ast.find_func_exn r.prog "child_agg" in
        Alcotest.(check bool) "global" true (agg.f_kind = Global);
        (* per-arg array params + scan + bdim + count *)
        Alcotest.(check int) "arity" 6 (List.length agg.f_params));
    t "disaggregation logic is tagged for the Fig. 10 breakdown" (fun () ->
        let r = transform Test_helpers.nested_src in
        let agg = Ast.find_func_exn r.prog "child_agg" in
        let tags = List.map (fun s -> s.stag) agg.f_body in
        Alcotest.(check bool) "all disagg-tagged" true
          (List.for_all (fun tg -> tg = Tag_disagg) tags));
    t "parent gains buffer parameters and an auto-params spec" (fun () ->
        let r = transform Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        Alcotest.(check bool) "params appended" true
          (List.length parent.f_params > 3);
        match r.auto_params with
        | [ ("parent", aps) ] ->
            Alcotest.(check int) "one buffer per appended param"
              (List.length parent.f_params - 3)
              (List.length aps)
        | _ -> Alcotest.fail "expected auto params for parent");
    t "block granularity uses shared-memory counters and a barrier" (fun () ->
        let r = transform ~granularity:Aggregation.Block Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        Alcotest.(check bool) "shared decl" true
          (Ast_util.contains_shared parent.f_body);
        Alcotest.(check bool) "barrier" true
          (Ast_util.contains_sync parent.f_body));
    t "multi-block granularity publishes with a threadfence" (fun () ->
        let r =
          transform ~granularity:(Aggregation.Multi_block 4)
            Test_helpers.nested_src
        in
        let parent = Ast.find_func_exn r.prog "parent" in
        let has_fence =
          Ast_util.fold_stmts
            (fun acc s -> acc || s.sdesc = Threadfence)
            false parent.f_body
        in
        Alcotest.(check bool) "fence before group signal" true has_fence);
    t "grid granularity launches from a host followup" (fun () ->
        let r = transform ~granularity:Aggregation.Grid Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        Alcotest.(check bool) "no launch left in parent" false
          (Ast_util.contains_launch parent.f_body);
        match parent.f_host_followup with
        | Some ss ->
            Alcotest.(check bool) "followup launches child_agg" true
              (List.exists
                 (fun l -> l.l_kernel = "child_agg")
                 (Ast_util.launches_of ss))
        | None -> Alcotest.fail "expected a host followup");
    t "warp granularity uses warp collectives" (fun () ->
        let r = transform ~granularity:Aggregation.Warp Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        let uses_collective =
          Ast_util.fold_exprs_in_stmts
            (fun acc e ->
              acc
              ||
              match e with
              | Call (("warp_scan_excl" | "warp_sum" | "warp_max"), _) -> true
              | _ -> false)
            false parent.f_body
        in
        Alcotest.(check bool) "collectives present" true uses_collective);
    t "semantics preserved at every granularity" (fun () ->
        List.iter
          (fun g -> ignore (Test_helpers.check_nested_variant (opts g)))
          [
            Aggregation.Warp;
            Aggregation.Block;
            Aggregation.Multi_block 1;
            Aggregation.Multi_block 3;
            Aggregation.Multi_block 16;
            Aggregation.Grid;
          ]);
    t "aggregation reduces the number of device launches" (fun () ->
        let _, plain = Test_helpers.check_nested_variant Pipeline.none in
        let _, agg =
          Test_helpers.check_nested_variant (opts (Aggregation.Multi_block 4))
        in
        Alcotest.(check bool) "fewer launches" true
          (agg.device_launches < plain.device_launches / 4));
    t "grid granularity performs zero device launches" (fun () ->
        let _, m = Test_helpers.check_nested_variant (opts Aggregation.Grid) in
        Alcotest.(check int) "device launches" 0 m.device_launches;
        Alcotest.(check bool) "host launched the aggregate" true
          (m.host_launches >= 2));
    t "aggregation logic appears in the breakdown" (fun () ->
        let _, m =
          Test_helpers.check_nested_variant (opts Aggregation.Block)
        in
        Alcotest.(check bool) "agg cycles" true (m.breakdown.agg_cycles > 0.0);
        Alcotest.(check bool) "disagg cycles" true
          (m.breakdown.disagg_cycles > 0.0));
    t "aggregation threshold falls back to direct launches (Section V-B)"
      (fun () ->
        (* with a huge aggregation threshold, no group aggregates: behaves
           like plain CDP but stays correct *)
        let r =
          Pipeline.run
            ~opts:
              (Pipeline.make ~granularity:Aggregation.Block
                 ~agg_threshold:10000 ())
            (Parser.program Test_helpers.nested_src)
        in
        let got, m = Test_helpers.run_nested r in
        Alcotest.(check (array int)) "output" (Test_helpers.expected_nested ()) got;
        Alcotest.(check bool) "direct launches happened" true
          (m.device_launches > 5));
    t "aggregation threshold at warp granularity" (fun () ->
        let r =
          Pipeline.run
            ~opts:
              (Pipeline.make ~granularity:Aggregation.Warp ~agg_threshold:2 ())
            (Parser.program Test_helpers.nested_src)
        in
        let got, _ = Test_helpers.run_nested r in
        Alcotest.(check (array int)) "output" (Test_helpers.expected_nested ()) got);
    t "launch inside a loop is rejected" (fun () ->
        let src =
          {|
__global__ void child(int* d) { d[blockIdx.x] = 1; }
__global__ void parent(int* d, int n) {
  for (int i = 0; i < n; i++) {
    child<<<1, 32>>>(d);
  }
}
|}
        in
        let r = transform src in
        Alcotest.(check bool) "not transformed" false
          (List.hd r.reports).sr_transformed;
        Alcotest.(check bool) "no agg kernel" false
          (List.exists (fun f -> f.f_name = "child_agg") r.prog));
    t "parent with early return is rejected" (fun () ->
        let src =
          {|
__global__ void child(int* d) { d[blockIdx.x] = 1; }
__global__ void parent(int* d, int n) {
  if (threadIdx.x >= n) { return; }
  child<<<1, 32>>>(d);
}
|}
        in
        let r = transform src in
        Alcotest.(check bool) "not transformed" false
          (List.hd r.reports).sr_transformed);
    t "aggregated block width is the max of participating blocks" (fun () ->
        (* two parents launch with different block sizes; the aggregated
           launch uses the max and masks extra threads *)
        let src =
          {|
__global__ void child(int* d, int slot, int bsize) {
  if (blockIdx.x == 0 && threadIdx.x == 0) {
    atomicAdd(&d[slot], bsize);
  }
}
__global__ void parent(int* d) {
  int v = threadIdx.x;
  if (v < 2) {
    child<<<1, (v + 1) * 16>>>(d, v, (v + 1) * 16);
  }
}
|}
        in
        let run opts =
          let r = Pipeline.run ~opts (Parser.program src) in
          let dev = Gpusim.Device.create ~cfg:Gpusim.Config.test_config () in
          Gpusim.Device.load_program dev r.prog
            ~auto_params:(Test_helpers.to_device_auto r.auto_params);
          let d = Gpusim.Device.alloc_int_zeros dev 2 in
          Gpusim.Device.launch dev ~kernel:"parent" ~grid:(1, 1, 1)
            ~block:(32, 1, 1) ~args:[ Gpusim.Value.Ptr d ];
          ignore (Gpusim.Device.sync dev);
          Gpusim.Device.read_ints dev d 2
        in
        let plain = run Pipeline.none in
        List.iter
          (fun g ->
            Alcotest.(check (array int))
              "heterogeneous block dims preserved" plain
              (run (opts g)))
          [ Aggregation.Warp; Aggregation.Block; Aggregation.Multi_block 2;
            Aggregation.Grid ]);
    t "partial trailing group still launches (multi-block)" (fun () ->
        (* 40 parents in blocks of 32 -> 2 parent blocks; group size 4 > 2:
           one partial group must still aggregate and launch *)
        let r =
          Pipeline.run
            ~opts:(Pipeline.make ~granularity:(Aggregation.Multi_block 4) ())
            (Parser.program Test_helpers.nested_src)
        in
        let got, m = Test_helpers.run_nested ~n:40 r in
        Alcotest.(check (array int)) "output" (Test_helpers.expected_nested ~n:40 ())
          got;
        Alcotest.(check int) "exactly one aggregated launch" 1
          m.device_launches);
    t "transformed program round-trips through the printer" (fun () ->
        List.iter
          (fun g ->
            let r = transform ~granularity:g Test_helpers.nested_src in
            Typecheck.check (Parser.program (Pretty.program r.prog)))
          [ Aggregation.Warp; Aggregation.Block; Aggregation.Multi_block 8 ]);
  ]
