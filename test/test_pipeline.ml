(* Pipeline composition tests: every T/C/A combination must preserve
   semantics; property-based check over random workloads. *)

open Dpopt

let t name f = Alcotest.test_case name `Quick f

let all_option_sets =
  let thresholds = [ None; Some 16 ] in
  let cfactors = [ None; Some 4 ] in
  let grans =
    [
      None;
      Some Aggregation.Warp;
      Some Aggregation.Block;
      Some (Aggregation.Multi_block 2);
      Some Aggregation.Grid;
    ]
  in
  List.concat_map
    (fun threshold ->
      List.concat_map
        (fun cfactor ->
          List.map
            (fun granularity ->
              Pipeline.make ?threshold ?cfactor ?granularity ())
            grans)
        cfactors)
    thresholds

let suite =
  [
    t "label renders enabled passes" (fun () ->
        Alcotest.(check string) "none" "CDP" (Pipeline.label Pipeline.none);
        Alcotest.(check string) "T" "CDP+T"
          (Pipeline.label (Pipeline.make ~threshold:1 ()));
        Alcotest.(check string) "TCA" "CDP+T+C+A"
          (Pipeline.label
             (Pipeline.make ~threshold:1 ~cfactor:2
                ~granularity:Aggregation.Block ())));
    t "all 20 T/C/A option sets preserve semantics" (fun () ->
        List.iter
          (fun opts -> ignore (Test_helpers.check_nested_variant opts))
          all_option_sets);
    t "every intermediate program typechecks (checked inside run)" (fun () ->
        List.iter
          (fun opts ->
            ignore
              (Pipeline.run ~opts
                 (Minicu.Parser.program Test_helpers.nested_src)))
          all_option_sets);
    t "passes are idempotent on launch-free programs" (fun () ->
        let src = "__global__ void k(int* d) { d[threadIdx.x] = 1; }" in
        let prog = Minicu.Parser.program src in
        let r =
          Pipeline.run
            ~opts:
              (Pipeline.make ~threshold:8 ~cfactor:4
                 ~granularity:Aggregation.Block ())
            prog
        in
        Alcotest.(check bool) "unchanged" true
          (Minicu.Ast.equal_program prog r.prog));
    t "run_source goes text to text" (fun () ->
        let text, r =
          Pipeline.run_source
            ~opts:(Pipeline.make ~threshold:8 ())
            Test_helpers.nested_src
        in
        Alcotest.(check bool) "serial fn in output" true
          (Test_helpers.has_fn r "child_serial");
        (* and the text parses back *)
        Minicu.Typecheck.check (Minicu.Parser.program text));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:30
         ~name:"random workloads preserved under random option sets"
         QCheck.(
           pair
             (list_of_size (Gen.int_range 1 25) (int_bound 70))
             (int_bound (List.length all_option_sets - 1)))
         (fun (degs, opt_idx) ->
           let opts = List.nth all_option_sets opt_idx in
           let n = List.length degs in
           let rows = Array.make (n + 1) 0 in
           List.iteri (fun i d -> rows.(i + 1) <- rows.(i) + d) degs;
           let total = rows.(n) in
           let r =
             Pipeline.run ~opts
               (Minicu.Parser.program Test_helpers.nested_src)
           in
           let dev =
             Gpusim.Device.create ~cfg:Gpusim.Config.test_config ()
           in
           Gpusim.Device.load_program dev r.prog
             ~auto_params:(Test_helpers.to_device_auto r.auto_params);
           let d_rows = Gpusim.Device.alloc_ints dev rows in
           let d_data =
             Gpusim.Device.alloc_ints dev (Array.init (max total 1) Fun.id)
           in
           Gpusim.Device.launch dev ~kernel:"parent"
             ~grid:((n + 31) / 32, 1, 1)
             ~block:(32, 1, 1)
             ~args:[ Ptr d_rows; Ptr d_data; Int n ];
           ignore (Gpusim.Device.sync dev);
           let got = Gpusim.Device.read_ints dev d_data (max total 1) in
           let expected =
             Array.init (max total 1) (fun i ->
                 if i < total then (i * 2) + 1 else i)
           in
           got = expected));
  ]
