(* Multiple launch sites per parent kernel: two different children, and two
   sites of the same child, under every optimization combination. Each site
   gets its own buffers/epilogue; outputs must match plain CDP exactly. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

(* parent launches two different children, each covering half the data *)
let two_children_src =
  {|
__global__ void double_child(int* d, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { d[base + i] = d[base + i] * 2; }
}

__global__ void incr_child(int* d, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { d[base + i] = d[base + i] + 100; }
}

__global__ void parent(int* rows, int* d, int nv) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < nv) {
    int start = rows[v];
    int deg = rows[v + 1] - start;
    if (deg > 0) {
      double_child<<<(deg + 15) / 16, 16>>>(d, start, deg);
      incr_child<<<(deg + 31) / 32, 32>>>(d, start, deg);
    }
  }
}
|}

(* two launch sites of the SAME child with different configurations *)
let same_child_twice_src =
  {|
__global__ void child(int* d, int base, int n, int delta) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { atomicAdd(&d[base + i], delta); }
}

__global__ void parent(int* rows, int* d, int nv) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < nv) {
    int start = rows[v];
    int deg = rows[v + 1] - start;
    if (deg > 2) {
      child<<<(deg + 15) / 16, 16>>>(d, start, deg, 7);
    }
    if (deg > 0) {
      child<<<(deg + 31) / 32, 32>>>(d, start, deg, 1000);
    }
  }
}
|}

let run src opts =
  let r = Dpopt.Pipeline.run ~opts (Minicu.Parser.program src) in
  let dev = Device.create ~cfg:Config.test_config () in
  Device.load_program dev r.prog
    ~auto_params:(Benchmarks.Bench_common.to_device_auto r.auto_params);
  let nv = 30 in
  let rows = Array.init (nv + 1) (fun i -> i * (i - 1) / 2) in
  let total = rows.(nv) in
  let d_rows = Device.alloc_ints dev rows in
  let d = Device.alloc_ints dev (Array.init total (fun i -> i)) in
  Device.launch dev ~kernel:"parent"
    ~grid:((nv + 31) / 32, 1, 1)
    ~block:(32, 1, 1)
    ~args:[ Value.Ptr d_rows; Value.Ptr d; Value.Int nv ];
  ignore (Device.sync dev);
  (Device.read_ints dev d total, Device.metrics dev)

let opt_sets =
  [
    ("T", Dpopt.Pipeline.make ~threshold:10 ());
    ("C", Dpopt.Pipeline.make ~cfactor:2 ());
    ("A-warp", Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Warp ());
    ("A-block", Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Block ());
    ( "A-mb2",
      Dpopt.Pipeline.make ~granularity:(Dpopt.Aggregation.Multi_block 2) () );
    ("A-grid", Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Grid ());
    ( "TCA",
      Dpopt.Pipeline.make ~threshold:10 ~cfactor:2
        ~granularity:(Dpopt.Aggregation.Multi_block 2) () );
  ]

let check_src name src =
  t name (fun () ->
      let reference, _ = run src Dpopt.Pipeline.none in
      List.iter
        (fun (label, opts) ->
          let got, _ = run src opts in
          Alcotest.(check (array int)) (name ^ " under " ^ label) reference got)
        opt_sets)

let suite =
  [
    check_src "two different children per parent" two_children_src;
    check_src "same child launched at two sites" same_child_twice_src;
    t "each aggregated site gets its own buffers" (fun () ->
        let r =
          Dpopt.Pipeline.run
            ~opts:(Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Block ())
            (Minicu.Parser.program two_children_src)
        in
        match r.auto_params with
        | [ ("parent", aps) ] ->
            (* two sites x (3 arg arrays + scan + bdim) = 10 buffers *)
            Alcotest.(check int) "buffer count" 10 (List.length aps);
            let names = List.map (fun (a : Dpopt.Aggregation.auto_param) -> a.ap_name) aps in
            Alcotest.(check bool) "site 0 and site 1 prefixes" true
              (List.exists (fun n -> String.length n > 5 && String.sub n 0 5 = "_agg0") names
              && List.exists (fun n -> String.length n > 5 && String.sub n 0 5 = "_agg1") names)
        | _ -> Alcotest.fail "expected auto params for parent");
    t "aggregating two sites creates one agg kernel per child" (fun () ->
        let r =
          Dpopt.Pipeline.run
            ~opts:(Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Block ())
            (Minicu.Parser.program same_child_twice_src)
        in
        let aggs =
          List.filter
            (fun (f : Minicu.Ast.func) ->
              String.length f.f_name >= 9
              && String.sub f.f_name 0 9 = "child_agg")
            r.prog
        in
        Alcotest.(check int) "one shared agg kernel" 1 (List.length aggs));
    t "launch counts drop per site under aggregation" (fun () ->
        let _, plain = run two_children_src Dpopt.Pipeline.none in
        let _, agg =
          run two_children_src
            (Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Grid ())
        in
        Alcotest.(check bool) "far fewer launches" true
          (agg.grids_launched * 4 < plain.grids_launched));
  ]
