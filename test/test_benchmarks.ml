(* Benchmark integration tests: every Table I benchmark validates against
   its pure-OCaml reference under a spread of optimization variants. These
   are the paper's correctness bar: the compiler must never change program
   output. Marked `Slow where heavy. *)

let variants =
  [
    ("No CDP", `No_cdp);
    ("CDP", `Cdp Dpopt.Pipeline.none);
    ("CDP+T", `Cdp (Dpopt.Pipeline.make ~threshold:32 ()));
    ("CDP+C", `Cdp (Dpopt.Pipeline.make ~cfactor:4 ()));
    ("CDP+A warp", `Cdp (Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Warp ()));
    ("CDP+A block", `Cdp (Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Block ()));
    ( "CDP+A grid",
      `Cdp (Dpopt.Pipeline.make ~granularity:Dpopt.Aggregation.Grid ()) );
    ( "CDP+T+C+A mb4",
      `Cdp
        (Dpopt.Pipeline.make ~threshold:32 ~cfactor:4
           ~granularity:(Dpopt.Aggregation.Multi_block 4) ()) );
  ]

(* tiny datasets so the full matrix stays fast *)
let specs () : Benchmarks.Bench_common.spec list =
  let kron = Workloads.Graph_gen.kron_dataset ~scale:7 () in
  let road = Workloads.Graph_gen.road_dataset ~rows:12 ~cols:12 () in
  let t32 = Workloads.Bezier.t0032_c16 ~n_lines:60 () in
  let t2048 = Workloads.Bezier.t2048_c64 ~n_lines:12 () in
  let rand3 = Workloads.Sat.rand3 ~n_vars:80 ~n_clauses:300 () in
  [
    Benchmarks.Bfs.spec ~dataset:kron;
    Benchmarks.Bfs.spec ~dataset:road;
    Benchmarks.Sssp.spec ~dataset:kron;
    Benchmarks.Mst.mstf_spec ~dataset:kron;
    Benchmarks.Mst.mstv_spec ~dataset:kron;
    Benchmarks.Sp.spec ~formula:rand3;
    Benchmarks.Tc.spec ~cap:400 ~dataset:kron ();
    Benchmarks.Bt.spec ~dataset:t32;
    Benchmarks.Bt.spec ~dataset:t2048;
  ]

let case (spec : Benchmarks.Bench_common.spec) (vname, v) =
  Alcotest.test_case
    (Fmt.str "%s/%s under %s" spec.name spec.dataset vname)
    `Slow
    (fun () ->
      let fp, _, _ = Benchmarks.Bench_common.run_variant spec v in
      let expected = spec.reference () in
      if fp <> expected then
        Alcotest.failf "fingerprint %d, reference %d" fp expected)

let structural =
  [
    Alcotest.test_case "registry covers the Table I matrix" `Quick (fun () ->
        let all = Benchmarks.Registry.all ~size:Small () in
        Alcotest.(check int) "14 bench/dataset pairs" 14 (List.length all);
        let names =
          List.sort_uniq compare
            (List.map (fun (s : Benchmarks.Bench_common.spec) -> s.name) all)
        in
        Alcotest.(check (list string)) "benchmarks"
          [ "BFS"; "BT"; "MSTF"; "MSTV"; "SP"; "SSSP"; "TC" ]
          names);
    Alcotest.test_case "road registry has the four graph benchmarks" `Quick
      (fun () ->
        let road = Benchmarks.Registry.road ~size:Small () in
        Alcotest.(check int) "4 pairs" 4 (List.length road);
        List.iter
          (fun (s : Benchmarks.Bench_common.spec) ->
            Alcotest.(check string) "dataset" "ROAD" s.dataset)
          road);
    Alcotest.test_case "registry find" `Quick (fun () ->
        Alcotest.(check bool) "BFS/KRON exists" true
          (Benchmarks.Registry.find ~name:"BFS" ~dataset:"KRON" () <> None);
        Alcotest.(check bool) "bogus absent" true
          (Benchmarks.Registry.find ~name:"XX" ~dataset:"KRON" () = None));
    Alcotest.test_case "CDP sources parse and typecheck" `Quick (fun () ->
        List.iter
          (fun (s : Benchmarks.Bench_common.spec) ->
            Minicu.Typecheck.check (Minicu.Parser.program s.cdp_src);
            Minicu.Typecheck.check (Minicu.Parser.program s.no_cdp_src))
          (specs ()));
    Alcotest.test_case "max_child_threads bounds the real launches" `Quick
      (fun () ->
        (* the threshold-tuning upper bound must be a real bound: the CDP
           versions must have at least one launch of that size *)
        List.iter
          (fun (s : Benchmarks.Bench_common.spec) ->
            Alcotest.(check bool)
              (s.name ^ " bound positive")
              true (s.max_child_threads > 0))
          (specs ()));
  ]

let suite =
  structural
  @ List.concat_map (fun s -> List.map (case s) variants) (specs ())
