(* Lexer unit tests. *)

open Minicu

let toks src = List.map fst (Lexer.tokenize src)

let check_toks name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = toks src in
      let show l = String.concat " " (List.map Lexer.token_to_string l) in
      Alcotest.(check string) name (show (expected @ [ Lexer.EOF ])) (show got))

let lex_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match Lexer.tokenize src with
      | _ -> Alcotest.failf "expected a lex error on %S" src
      | exception Loc.Error _ -> ())

let suite =
  let open Lexer in
  [
    check_toks "empty" "" [];
    check_toks "whitespace only" "  \t\n  " [];
    check_toks "int literal" "42" [ INT 42 ];
    check_toks "zero" "0" [ INT 0 ];
    check_toks "int with unsigned suffix" "42u" [ INT 42 ];
    check_toks "int with long suffix" "42ull" [ INT 42 ];
    check_toks "float literal" "3.5" [ FLOAT 3.5 ];
    check_toks "float with f suffix" "3.5f" [ FLOAT 3.5 ];
    check_toks "float exponent" "1e3" [ FLOAT 1000.0 ];
    check_toks "float negative exponent" "25e-2" [ FLOAT 0.25 ];
    check_toks "identifier" "foo_bar2" [ IDENT "foo_bar2" ];
    check_toks "underscore ident" "__foo" [ IDENT "__foo" ];
    check_toks "keywords" "if else for while return break continue"
      [ KW_IF; KW_ELSE; KW_FOR; KW_WHILE; KW_RETURN; KW_BREAK; KW_CONTINUE ];
    check_toks "type keywords" "void int float bool dim3"
      [ KW_VOID; KW_INT; KW_FLOAT; KW_BOOL; KW_DIM3 ];
    check_toks "unsigned maps to int" "unsigned" [ KW_INT ];
    check_toks "double maps to float" "double" [ KW_FLOAT ];
    check_toks "attribute keywords" "__global__ __device__ __shared__"
      [ KW_GLOBAL; KW_DEVICE; KW_SHARED ];
    check_toks "member access int vs float" "a.x" [ IDENT "a"; DOT; IDENT "x" ];
    check_toks "launch chevrons" "k<<<1, 2>>>()"
      [ IDENT "k"; LAUNCH_OPEN; INT 1; COMMA; INT 2; LAUNCH_CLOSE; LPAREN; RPAREN ];
    check_toks "shift left vs chevron" "a << b" [ IDENT "a"; SHL; IDENT "b" ];
    check_toks "shift right" "a >> b" [ IDENT "a"; SHR; IDENT "b" ];
    check_toks "comparison chains" "a <= b >= c == d != e"
      [ IDENT "a"; LE; IDENT "b"; GE; IDENT "c"; EQEQ; IDENT "d"; NEQ; IDENT "e" ];
    check_toks "logical ops" "a && b || !c"
      [ IDENT "a"; ANDAND; IDENT "b"; OROR; BANG; IDENT "c" ];
    check_toks "bitwise ops" "a & b | c ^ d"
      [ IDENT "a"; AMP; IDENT "b"; PIPE; IDENT "c"; CARET; IDENT "d" ];
    check_toks "compound assigns" "a += 1; b -= 2; c *= 3; d /= 4;"
      [
        IDENT "a"; PLUSEQ; INT 1; SEMI; IDENT "b"; MINUSEQ; INT 2; SEMI;
        IDENT "c"; STAREQ; INT 3; SEMI; IDENT "d"; SLASHEQ; INT 4; SEMI;
      ];
    check_toks "increment decrement" "i++; j--;"
      [ IDENT "i"; PLUSPLUS; SEMI; IDENT "j"; MINUSMINUS; SEMI ];
    check_toks "line comment" "a // comment here\nb" [ IDENT "a"; IDENT "b" ];
    check_toks "block comment" "a /* x\ny */ b" [ IDENT "a"; IDENT "b" ];
    check_toks "nested-looking block comment" "a /* /* */ b" [ IDENT "a"; IDENT "b" ];
    check_toks "ternary" "a ? b : c"
      [ IDENT "a"; QUESTION; IDENT "b"; COLON; IDENT "c" ];
    check_toks "brackets and braces" "{ a[0] }"
      [ LBRACE; IDENT "a"; LBRACKET; INT 0; RBRACKET; RBRACE ];
    lex_fails "unterminated block comment" "a /* b";
    lex_fails "stray character" "a $ b";
    Alcotest.test_case "locations track lines" `Quick (fun () ->
        let l = Lexer.tokenize "a\nbb\n  c" in
        let locs = List.map snd l in
        let lines = List.map (fun (loc : Loc.t) -> loc.line) locs in
        Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ] lines;
        let cols = List.map (fun (loc : Loc.t) -> loc.col) locs in
        Alcotest.(check (list int)) "cols" [ 1; 1; 3; 4 ] cols);
    Alcotest.test_case "error carries location" `Quick (fun () ->
        match Lexer.tokenize "ab\n  $" with
        | _ -> Alcotest.fail "expected error"
        | exception Loc.Error (loc, _) ->
            Alcotest.(check int) "line" 2 loc.line;
            Alcotest.(check int) "col" 3 loc.col);
    Alcotest.test_case "unterminated comment points at its opener" `Quick
      (fun () ->
        match Lexer.tokenize "ab\n /* never closed" with
        | _ -> Alcotest.fail "expected error"
        | exception Loc.Error (loc, msg) ->
            Alcotest.(check string) "message" "unterminated block comment" msg;
            Alcotest.(check int) "line" 2 loc.line;
            Alcotest.(check int) "col" 2 loc.col);
    Alcotest.test_case "stray character names the culprit" `Quick (fun () ->
        match Lexer.tokenize "__global__ void k() { @ }" with
        | _ -> Alcotest.fail "expected error"
        | exception Loc.Error (loc, msg) ->
            Alcotest.(check string) "message" "unexpected character '@'" msg;
            Alcotest.(check int) "line" 1 loc.line;
            Alcotest.(check int) "col" 23 loc.col);
  ]
