(* Coarsening transformation tests (paper Section IV). *)

open Minicu
open Minicu.Ast
open Dpopt

let t name f = Alcotest.test_case name `Quick f

let transform ?(cfactor = 4) src =
  Coarsening.transform ~opts:{ cfactor } (Parser.program src)

let suite =
  [
    t "child gains a trailing _gDim parameter" (fun () ->
        let r = transform Test_helpers.nested_src in
        let child = Ast.find_func_exn r.prog "child" in
        Alcotest.(check int) "arity" 4 (List.length child.f_params);
        let last = List.nth child.f_params 3 in
        Alcotest.(check bool) "dim3 type" true (last.p_ty = TDim3));
    t "child body is a grid-stride coarsening loop" (fun () ->
        let r = transform Test_helpers.nested_src in
        let child = Ast.find_func_exn r.prog "child" in
        match child.f_body with
        | [ { sdesc = For (Some init, Some _, Some _, [ _call ]); _ } ] -> (
            match init.sdesc with
            | Decl (TInt, _, Some (Member (Var "blockIdx", "x"))) -> ()
            | _ -> Alcotest.fail "loop should start at blockIdx.x")
        | _ -> Alcotest.fail "expected a single coarsening loop");
    t "body extracted into a device function" (fun () ->
        let r = transform Test_helpers.nested_src in
        let body = Ast.find_func_exn r.prog "child_block_body" in
        Alcotest.(check bool) "device" true (body.f_kind = Device);
        (* blockIdx and gridDim must have been substituted away *)
        let uses =
          Ast_util.fold_exprs_in_stmts
            (fun acc e ->
              acc
              || match e with Var ("blockIdx" | "gridDim") -> true | _ -> false)
            false body.f_body
        in
        Alcotest.(check bool) "no blockIdx/gridDim" false uses);
    t "launch site divides the grid by the coarsening factor" (fun () ->
        let r = transform ~cfactor:4 Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        let found = ref false in
        ignore
          (Ast_util.fold_stmts
             (fun () s ->
               match s.sdesc with
               | Assign
                   ( Member (Var _, "x"),
                     Binop (Div, Binop (Add, _, Int_lit 3), Int_lit 4) ) ->
                   found := true
               | _ -> ())
             () parent.f_body);
        Alcotest.(check bool) "ceil-div by 4 present" true !found);
    t "launch passes the original grid dimension" (fun () ->
        let r = transform Test_helpers.nested_src in
        let parent = Ast.find_func_exn r.prog "parent" in
        match Ast_util.launches_of parent.f_body with
        | [ l ] ->
            Alcotest.(check int) "one extra arg" 4 (List.length l.l_args)
        | _ -> Alcotest.fail "expected one launch");
    t "semantics preserved across coarsening factors" (fun () ->
        List.iter
          (fun cfactor ->
            ignore (Test_helpers.check_nested_variant (Pipeline.make ~cfactor ())))
          [ 1; 2; 3; 8; 64 ]);
    t "coarsening reduces the number of child blocks" (fun () ->
        let _, m1 =
          Test_helpers.check_nested_variant (Pipeline.make ~cfactor:1 ())
        in
        let _, m8 =
          Test_helpers.check_nested_variant (Pipeline.make ~cfactor:8 ())
        in
        Alcotest.(check bool) "fewer blocks" true
          (m8.blocks_executed < m1.blocks_executed));
    t "coarsened child with __syncthreads stays correct" (fun () ->
        (* per-block shared staging with barriers inside a coarsened child:
           barrier alignment must hold across coarsening iterations *)
        let src =
          {|
__global__ void child(int* d, int nblocks) {
  __shared__ int buf[8];
  buf[threadIdx.x] = d[blockIdx.x * 8 + threadIdx.x];
  __syncthreads();
  d[blockIdx.x * 8 + threadIdx.x] = buf[7 - threadIdx.x];
  __syncthreads();
}
__global__ void parent(int* d, int nblocks) {
  child<<<nblocks, 8>>>(d, nblocks);
}
|}
        in
        let run opts =
          let r = Pipeline.run ~opts (Parser.program src) in
          let dev = Gpusim.Device.create ~cfg:Gpusim.Config.test_config () in
          Gpusim.Device.load_program dev r.prog;
          let d = Gpusim.Device.alloc_ints dev (Array.init 32 Fun.id) in
          Gpusim.Device.launch dev ~kernel:"parent" ~grid:(1, 1, 1)
            ~block:(1, 1, 1)
            ~args:[ Gpusim.Value.Ptr d; Gpusim.Value.Int 4 ];
          ignore (Gpusim.Device.sync dev);
          Gpusim.Device.read_ints dev d 32
        in
        let plain = run Pipeline.none in
        let coarse = run (Pipeline.make ~cfactor:2 ()) in
        Alcotest.(check (array int)) "same result" plain coarse);
    t "multiple children each get coarsened once" (fun () ->
        let src =
          {|
__global__ void c1(int* d) { d[blockIdx.x] = 1; }
__global__ void c2(int* d) { d[blockIdx.x] = 2; }
__global__ void parent(int* d, int n) {
  c1<<<(n + 31) / 32, 32>>>(d);
  c2<<<(n + 31) / 32, 32>>>(d);
}
|}
        in
        let r = transform src in
        Alcotest.(check bool) "c1 body" true
          (List.exists (fun f -> f.f_name = "c1_block_body") r.prog);
        Alcotest.(check bool) "c2 body" true
          (List.exists (fun f -> f.f_name = "c2_block_body") r.prog);
        Typecheck.check r.prog);
    t "kernels that are never launched are untouched" (fun () ->
        let src = "__global__ void lonely(int* d) { d[0] = 1; }" in
        let r = transform src in
        Alcotest.(check int) "unchanged" 1 (List.length r.prog));
    t "transformed program round-trips through the printer" (fun () ->
        let r = transform Test_helpers.nested_src in
        let printed = Pretty.program r.prog in
        Typecheck.check (Parser.program printed));
    t "reports cover each launch site" (fun () ->
        let r = transform Test_helpers.nested_src in
        Alcotest.(check int) "one site" 1 (List.length r.reports);
        Alcotest.(check bool) "transformed" true
          (List.hd r.reports).sr_transformed);
  ]
