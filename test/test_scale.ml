(* Paper-scale execution: parallel block dispatch and stratified grid
   sampling (Gpusim.Sched, Gpusim.Blocksafe, Gpusim.Memory typed storage).

   The central invariants pinned here:
   - parallel dispatch ([Config.block_jobs] > 1) is byte-identical to the
     serial drain — memory dumps and every metrics field — under both
     execution engines;
   - stratified sampling is a deterministic function of (seed, stream,
     grid id): the same config picks the same blocks at any -j, and the
     off-switches ([block_frac = 1.0], [block_threshold = 0], [--exact])
     reproduce the exact scheduler bit-for-bit;
   - sampled runs extrapolate within the documented error bound on the
     benchmarks the @scale gate covers. *)

open Gpusim

let t name f = Alcotest.test_case name `Quick f

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Harness: run a driver under a config, snapshot dump + metrics        *)
(* ------------------------------------------------------------------ *)

(* Everything observable about a finished run. Structural equality over
   this is the "byte-identical" check: every metrics field (breakdown,
   sampling stats, counters) and every memory cell. *)
type outcome = {
  o_time : float;
  o_dump : Value.t array list;
  o_metrics : string;
}

let metrics_str m = Fmt.str "%a" Metrics.pp m

let run_driver ?(cfg = Config.test_config) ~src drive : outcome * Device.t =
  let dev = Device.create ~cfg () in
  Device.load_program dev (Minicu.Parser.program src);
  drive dev;
  let time = Device.sync dev in
  ( {
      o_time = time;
      o_dump = Device.dump_memory dev ~first:(Device.buffer_count dev);
      o_metrics = metrics_str (Device.metrics dev);
    },
    dev )

let check_same_outcome label (a : outcome) (b : outcome) =
  Alcotest.(check (float 0.0)) (label ^ ": simulated time") a.o_time b.o_time;
  Alcotest.(check string) (label ^ ": metrics") a.o_metrics b.o_metrics;
  Alcotest.(check bool) (label ^ ": memory dump") true (a.o_dump = b.o_dump)

let engines = [ (Config.Closure, "closure"); (Config.Bytecode, "bytecode") ]

(* ------------------------------------------------------------------ *)
(* Kernels                                                             *)
(* ------------------------------------------------------------------ *)

(* Per-thread-window writer: provably cross-block safe (Owned). *)
let owned_src =
  {|
__global__ void owned(int* out, int n, int iters) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int s = 0;
  for (int k = 0; k < iters; k = k + 1) { s = s + k; }
  if (i < n) { out[i] = s + i; }
}
|}

(* Commutative reduction into a shared cell: provably safe (Reduce). *)
let reduce_src =
  {|
__global__ void reduce(int* data, int* sum, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { atomicAdd(&sum[0], data[i]); }
}
|}

(* Block-dependent trip count: non-uniform per-block work, for strata. *)
let skewed_src =
  {|
__global__ void skewed(int* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int trips = (blockIdx.x % 8) * 12 + 4;
  int s = 0;
  for (int k = 0; k < trips; k = k + 1) { s = s + k; }
  if (i < n) { out[i] = s; }
}
|}

let drive_owned ?(blocks = 8) ?(iters = 50) dev =
  let n = blocks * 32 in
  let out = Device.alloc_int_zeros dev n in
  Device.launch dev ~kernel:"owned" ~grid:(blocks, 1, 1) ~block:(32, 1, 1)
    ~args:[ Value.Ptr out; Value.Int n; Value.Int iters ]

let drive_reduce ?(blocks = 8) dev =
  let n = blocks * 32 in
  let data = Device.alloc_ints dev (Array.init n (fun i -> i + 1)) in
  let sum = Device.alloc_int_zeros dev 1 in
  Device.launch dev ~kernel:"reduce" ~grid:(blocks, 1, 1) ~block:(32, 1, 1)
    ~args:[ Value.Ptr data; Value.Ptr sum; Value.Int n ]

let drive_skewed ?(blocks = 64) dev =
  let n = blocks * 32 in
  let out = Device.alloc_int_zeros dev n in
  Device.launch dev ~kernel:"skewed" ~grid:(blocks, 1, 1) ~block:(32, 1, 1)
    ~args:[ Value.Ptr out; Value.Int n ]

(* ------------------------------------------------------------------ *)
(* Blocksafe classification                                            *)
(* ------------------------------------------------------------------ *)

let analyze src name =
  let prog = Minicu.Parser.program src in
  let f = List.find (fun (f : Minicu.Ast.func) -> f.f_name = name) prog in
  Blocksafe.analyze prog f

let test_blocksafe_classify () =
  let s = analyze owned_src "owned" in
  Alcotest.(check bool) "owned safe" true s.bs_safe;
  (match s.bs_modes.(0) with
  | Blocksafe.Owned 1 -> ()
  | Blocksafe.Read_only -> Alcotest.fail "out: expected Owned 1, got Read_only"
  | Blocksafe.Owned k -> Alcotest.failf "out: expected Owned 1, got Owned %d" k
  | Blocksafe.Reduce -> Alcotest.fail "out: expected Owned 1, got Reduce");
  let s = analyze reduce_src "reduce" in
  Alcotest.(check bool) "reduce safe" true s.bs_safe;
  Alcotest.(check bool) "data is Read_only" true
    (s.bs_modes.(0) = Blocksafe.Read_only);
  Alcotest.(check bool) "sum is Reduce" true (s.bs_modes.(1) = Blocksafe.Reduce);
  (* launching kernels are never batchable *)
  let s = analyze Test_helpers.nested_src "parent" in
  Alcotest.(check bool) "launching parent unsafe" false s.bs_safe

(* ------------------------------------------------------------------ *)
(* Parallel dispatch: byte-identity and occupancy                       *)
(* ------------------------------------------------------------------ *)

let par_identity ~src ~drive () =
  List.iter
    (fun (engine, ename) ->
      let cfg = { Config.test_config with engine } in
      let serial, _ = run_driver ~cfg ~src drive in
      let par, dev4 =
        run_driver ~cfg:{ cfg with block_jobs = 4 } ~src drive
      in
      check_same_outcome (ename ^ " -j1 vs -j4") serial par;
      let batches, blocks = Device.par_stats dev4 in
      Alcotest.(check bool)
        (ename ^ ": parallel batches formed")
        true
        (batches > 0 && blocks >= 2 * batches))
    engines

let test_par_identity_owned = par_identity ~src:owned_src ~drive:drive_owned
let test_par_identity_reduce = par_identity ~src:reduce_src ~drive:drive_reduce

(* Unsafe (launching) kernels fall back to serial execution inside the
   parallel drain — identical results, no concurrent batches. *)
let test_par_identity_unsafe () =
  List.iter
    (fun (engine, ename) ->
      let run jobs =
        let cfg = { Config.test_config with engine; block_jobs = jobs } in
        let r = Dpopt.Pipeline.run ~opts:Dpopt.Pipeline.none
            (Minicu.Parser.program Test_helpers.nested_src) in
        let data, m = Test_helpers.run_nested ~cfg r in
        (data, metrics_str m)
      in
      let d1, m1 = run 1 and d4, m4 = run 4 in
      Alcotest.(check bool) (ename ^ ": nested output") true (d1 = d4);
      Alcotest.(check string) (ename ^ ": nested metrics") m1 m4)
    engines

(* Benchmark-level identity: one registry cell, exact, -j1 vs -j4. *)
let test_par_identity_benchmark () =
  match Benchmarks.Registry.find ~name:"BT" ~dataset:"T0032-C16" () with
  | None -> Alcotest.fail "BT/T0032-C16 missing from registry"
  | Some spec ->
      List.iter
        (fun (engine, ename) ->
          let run jobs =
            let cfg = { Config.default with engine; block_jobs = jobs } in
            Harness.Experiment.run ~cfg spec
              (Harness.Variant.Cdp Dpopt.Pipeline.none)
          in
          let a = run 1 and b = run 4 in
          Alcotest.(check (float 0.0)) (ename ^ ": time") a.time b.time;
          Alcotest.(check int) (ename ^ ": fingerprint") a.fingerprint
            b.fingerprint;
          Alcotest.(check bool) (ename ^ ": snapshot") true (a.snap = b.snap))
        engines

(* ------------------------------------------------------------------ *)
(* Sampling: determinism, off-switches, extrapolation                   *)
(* ------------------------------------------------------------------ *)

let sampled_cfg ?(engine = Config.Closure) ?(block_jobs = 1) () =
  {
    Config.test_config with
    engine;
    block_jobs;
    sampling = Some Config.default_sampling;
  }

let test_sampling_deterministic () =
  List.iter
    (fun (engine, ename) ->
      let run jobs =
        fst
          (run_driver
             ~cfg:(sampled_cfg ~engine ~block_jobs:jobs ())
             ~src:skewed_src drive_skewed)
      in
      let a = run 1 and b = run 1 and c = run 4 in
      check_same_outcome (ename ^ ": sampled rerun") a b;
      check_same_outcome (ename ^ ": sampled -j1 vs -j4") a c)
    engines

let test_sampling_triggers () =
  let o, dev =
    run_driver ~cfg:(sampled_cfg ()) ~src:skewed_src drive_skewed
  in
  let m = Device.metrics dev in
  Alcotest.(check bool) "sampled" true (Metrics.sampled m);
  Alcotest.(check bool) "skipped blocks" true (m.sampling.skipped_blocks > 0);
  Alcotest.(check bool) "simulated blocks" true
    (m.sampling.sampled_blocks > 0);
  Alcotest.(check bool) "variance accumulated" true
    (m.sampling.est_total > 0.0);
  Alcotest.(check bool) "error bound finite" true
    (Float.is_finite (Metrics.rel_std_error m));
  ignore o

(* frac = 1.0 and threshold = 0 both mean "no sampling": bit-identical to
   [sampling = None]. *)
let test_sampling_off_switches () =
  let exact, _ = run_driver ~src:skewed_src drive_skewed in
  let full_frac =
    {
      Config.test_config with
      sampling =
        Some
          {
            Config.default_sampling with
            block_frac = 1.0;
            launch_frac = 1.0;
          };
    }
  in
  let a, _ = run_driver ~cfg:full_frac ~src:skewed_src drive_skewed in
  check_same_outcome "frac=1.0 is exact" exact a;
  let zero_thresh =
    {
      Config.test_config with
      sampling =
        Some
          {
            Config.default_sampling with
            block_threshold = 0;
            launch_threshold = 0;
          };
    }
  in
  let b, _ = run_driver ~cfg:zero_thresh ~src:skewed_src drive_skewed in
  check_same_outcome "threshold=0 is exact" exact b

(* Extrapolated total time within a loose bound on the skewed kernel (the
   tight 10% bound on real benchmarks is the @scale gate's job). *)
let test_sampling_extrapolation () =
  let exact, _ = run_driver ~src:skewed_src drive_skewed in
  let sampled, _ =
    run_driver ~cfg:(sampled_cfg ()) ~src:skewed_src drive_skewed
  in
  let err = Float.abs (sampled.o_time -. exact.o_time) /. exact.o_time in
  if err > 0.10 then
    Alcotest.failf "extrapolation error %.1f%% (exact %.0f, sampled %.0f)"
      (100.0 *. err) exact.o_time sampled.o_time

(* ------------------------------------------------------------------ *)
(* Large-tier ingredients and the supporting harness fixes              *)
(* ------------------------------------------------------------------ *)

(* The large tier's RMAT graph must be in the paper's regime: hub degree
   two orders of magnitude above the mean (cf. kron_g500 in Table I). *)
let test_kron_degree_skew () =
  let g = Workloads.Graph_gen.kron ~scale:13 ~edge_factor:16 () in
  let ratio =
    float_of_int (Workloads.Csr.max_degree g) /. Workloads.Csr.avg_degree g
  in
  if ratio < 100.0 then
    Alcotest.failf "kron scale 13: max/avg degree %.1f < 100" ratio

(* Large-tier cycle counts must render as exact integers, not float
   mantissa approximations, in the CSV/JSON artifacts. *)
let test_csv_cycles () =
  Alcotest.(check string) "small" "42" (Harness.Csv.cycles 42.0);
  Alcotest.(check string) "zero" "0" (Harness.Csv.cycles 0.0);
  Alcotest.(check string)
    "large integral" "1234567890123456"
    (Harness.Csv.cycles 1234567890123456.0);
  Alcotest.(check string)
    "beyond int range" "10000000000000000000"
    (Harness.Csv.cycles 1e19)

let test_geomean_guard () =
  let raises xs =
    match Harness.Stats.geomean xs with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rejects inf" true (raises [ 1.0; infinity ]);
  Alcotest.(check bool) "rejects nan" true (raises [ 1.0; nan ]);
  Alcotest.(check bool) "rejects zero" true (raises [ 0.0 ]);
  (* log-domain accumulation: a product that overflows floats is fine *)
  let g = Harness.Stats.geomean (List.init 100 (fun _ -> 1e300)) in
  Alcotest.(check bool) "no overflow" true
    (Float.is_finite g && Float.abs (g /. 1e300 -. 1.0) < 1e-6)

let test_extrapolate_report () =
  let exact, dev = run_driver ~src:skewed_src drive_skewed in
  Alcotest.(check bool) "exact run: no report" true
    (Costmodel.Extrapolate.of_metrics (Device.metrics dev) = None);
  ignore exact;
  let _, dev = run_driver ~cfg:(sampled_cfg ()) ~src:skewed_src drive_skewed in
  match Costmodel.Extrapolate.of_metrics (Device.metrics dev) with
  | None -> Alcotest.fail "sampled run: expected a report"
  | Some r ->
      Alcotest.(check bool) "CI brackets the estimate" true
        (r.ex_ci95_lo <= r.ex_est_total && r.ex_est_total <= r.ex_ci95_hi);
      Alcotest.(check bool) "partial coverage" true
        (r.ex_block_coverage > 0.0 && r.ex_block_coverage < 1.0);
      Alcotest.(check bool) "counts" true
        (r.ex_sampled_blocks > 0 && r.ex_skipped_blocks > 0);
      let s = Fmt.str "%a" Costmodel.Extrapolate.pp r in
      Alcotest.(check bool) "pp mentions CI" true
        (contains ~affix:"95% CI" s)

let test_parsafety_report () =
  let entries =
    Analysis.Parsafety.report (Minicu.Parser.program owned_src)
  in
  (match entries with
  | [ e ] ->
      Alcotest.(check string) "kernel" "owned" e.ps_kernel;
      Alcotest.(check bool) "safe" true e.ps_summary.bs_safe;
      Alcotest.(check bool) "static work positive" true (e.ps_static_work > 0.0)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  let entries =
    Analysis.Parsafety.report (Minicu.Parser.program Test_helpers.nested_src)
  in
  let parent =
    List.find (fun (e : Analysis.Parsafety.entry) -> e.ps_kernel = "parent")
      entries
  in
  Alcotest.(check bool) "parent serial" false parent.ps_summary.bs_safe;
  let s = Fmt.str "%a" Analysis.Parsafety.pp entries in
  Alcotest.(check bool) "pp mentions serial" true
    (contains ~affix:"serial" s)

(* The @scale gate's bound, pinned on a real registry cell: a sampled
   medium-tier benchmark extrapolates within 10% of the exact run. *)
let test_benchmark_extrapolation_medium () =
  match
    Benchmarks.Registry.find ~size:Benchmarks.Registry.Medium ~name:"BT"
      ~dataset:"T0032-C16" ()
  with
  | None -> Alcotest.fail "BT/T0032-C16 missing from registry"
  | Some spec ->
      let run cfg = Harness.Experiment.run ~cfg spec (Harness.Variant.Cdp Dpopt.Pipeline.none) in
      let exact = run Config.default in
      let sampled =
        run { Config.default with sampling = Some Config.default_sampling }
      in
      Alcotest.(check bool) "sampling triggered" true sampled.sampled;
      let err = Float.abs (sampled.time -. exact.time) /. exact.time in
      if err > 0.10 then
        Alcotest.failf
          "medium BT extrapolation error %.1f%% (exact %.0f, sampled %.0f, \
           reported rse %.3f)"
          (100.0 *. err) exact.time sampled.time sampled.rel_std_error

let suite =
  [
    t "blocksafe classifies owned/reduce/unsafe" test_blocksafe_classify;
    t "parallel dispatch: owned kernel byte-identical"
      test_par_identity_owned;
    t "parallel dispatch: reduce kernel byte-identical"
      test_par_identity_reduce;
    t "parallel dispatch: unsafe kernels fall back, identical"
      test_par_identity_unsafe;
    t "parallel dispatch: benchmark cell identical at -j4"
      test_par_identity_benchmark;
    t "sampling: deterministic at any -j" test_sampling_deterministic;
    t "sampling: triggers and reports error bound" test_sampling_triggers;
    t "sampling: frac=1/threshold=0 are exact" test_sampling_off_switches;
    t "sampling: extrapolation within 10% on skewed kernel"
      test_sampling_extrapolation;
    t "large tier: kron scale 13 has 100x degree skew" test_kron_degree_skew;
    t "csv: cycle counts render as exact integers" test_csv_cycles;
    t "stats: geomean rejects non-finite, no overflow" test_geomean_guard;
    t "extrapolate: report only on sampled runs, CI sane"
      test_extrapolate_report;
    t "parsafety: classifies kernels, renders report" test_parsafety_report;
    t "sampling: medium benchmark cell within 10% of exact"
      test_benchmark_extrapolation_medium;
  ]
