(* Typechecker tests: accepted programs and each rejection rule. *)

open Minicu

let accepts name src =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.check_result (Parser.program src) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "expected to typecheck, got: %s" m)

let rejects name ?(substring = "") src =
  Alcotest.test_case name `Quick (fun () ->
      match Typecheck.check_result (Parser.program src) with
      | Ok () -> Alcotest.fail "expected a type error"
      | Error m ->
          if substring <> "" then
            let contains s sub =
              let n = String.length s and k = String.length sub in
              let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
              go 0
            in
            if not (contains m substring) then
              Alcotest.failf "error %S does not mention %S" m substring)

let suite =
  [
    accepts "minimal kernel" "__global__ void k() { }";
    accepts "reserved variables are in scope"
      "__global__ void k(int* d) { d[threadIdx.x + blockIdx.x * blockDim.x] = \
       gridDim.x; }";
    accepts "device call"
      "__device__ int f(int x) { return x + 1; } __global__ void k(int* d) { \
       d[0] = f(3); }";
    accepts "forward reference"
      "__global__ void k(int* d) { d[0] = f(3); } __device__ int f(int x) { \
       return x; }";
    accepts "launch with matching arity"
      "__global__ void c(int* d, int n) { } __global__ void p(int* d) { \
       c<<<1, 32>>>(d, 5); }";
    accepts "builtin calls"
      "__global__ void k(int* d) { d[0] = atomicAdd(&d[1], min(2, 3)); }";
    accepts "warp collectives"
      "__global__ void k(int* d) { d[0] = warp_scan_excl(1) + warp_sum(2) + \
       warp_max(3); }";
    accepts "shadowing in inner scope"
      "__global__ void k(int n) { int x = 1; if (n > 0) { float x = 2.0; x = \
       x + 1.0; } x = x + 1; }";
    accepts "for-header scope"
      "__global__ void k(int n) { for (int i = 0; i < n; i++) { int j = i; j \
       = j + 1; } }";
    accepts "pointer arithmetic"
      "__global__ void k(int* d) { int* q = d + 4; q[0] = 1; }";
    accepts "dim3 members"
      "__global__ void k(int* d) { dim3 g = dim3(1, 2, 3); d[0] = g.y; }";
    accepts "break in loop" "__global__ void k() { while (true) { break; } }";
    rejects "unbound variable" ~substring:"unbound"
      "__global__ void k() { int x = y; }";
    rejects "out-of-scope after block" ~substring:"unbound"
      "__global__ void k(int n) { if (n > 0) { int x = 1; } int y = x; }";
    rejects "for-header var escapes" ~substring:"unbound"
      "__global__ void k(int n) { for (int i = 0; i < n; i++) { } int y = i; }";
    rejects "unknown function" ~substring:"unknown function"
      "__global__ void k() { nosuch(); }";
    rejects "calling a kernel" ~substring:"launch"
      "__global__ void c() { } __global__ void k() { c(); }";
    rejects "launching a device function"
      "__device__ void f() { } __global__ void k() { f<<<1, 1>>>(); }";
    rejects "launch of unknown kernel"
      "__global__ void k() { nothere<<<1, 1>>>(); }";
    rejects "launch arity mismatch"
      "__global__ void c(int a) { } __global__ void k() { c<<<1, 1>>>(); }";
    rejects "call arity mismatch"
      "__device__ void f(int a) { } __global__ void k() { f(1, 2); }";
    rejects "builtin arity mismatch" "__global__ void k() { min(1); }";
    rejects "assigning a reserved variable" ~substring:"reserved"
      "__global__ void k() { threadIdx = dim3(1, 1, 1); }";
    rejects "redeclaring a reserved variable" ~substring:"reserved"
      "__global__ void k() { int threadIdx = 0; }";
    rejects "parameter shadows reserved" ~substring:"reserved"
      "__global__ void k(int blockIdx) { }";
    rejects "dim3 member on int is rejected statically"
      "__global__ void k(int n) { int x = n.x; }";
    rejects "bad dim3 member"
      "__global__ void k() { int x = threadIdx.w; }";
    rejects "indexing a non-pointer"
      "__global__ void k(int n) { int x = n[0]; }";
    rejects "non-integral index"
      "__global__ void k(float f, int* d) { d[f] = 1; }";
    rejects "return value from void"
      "__global__ void k() { return 3; }";
    rejects "missing return value"
      "__device__ int f() { return; }";
    rejects "break outside loop" ~substring:"break"
      "__global__ void k() { break; }";
    rejects "duplicate function names" ~substring:"duplicate"
      "__global__ void k() { } __global__ void k() { }";
    accepts "shared memory in device function (coarsened bodies)"
      "__device__ void f() { __shared__ int b[4]; b[0] = 1; }";
    rejects "address of scalar local" ~substring:"address"
      "__global__ void k() { int x = 0; atomicAdd(&x, 1); }";
  ]
