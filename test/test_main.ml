(* Test runner: all suites. *)

let () =
  Alcotest.run "dpopt"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("ast_util", Test_ast_util.suite);
      ("typecheck", Test_typecheck.suite);
      ("pattern", Test_pattern.suite);
      ("memory+values+events", Test_memory.suite);
      ("event-queue", Test_event_queue.suite);
      ("interp", Test_interp.suite);
      ("interp-edge", Test_interp_edge.suite);
      ("sched", Test_sched.suite);
      ("trace", Test_trace.suite);
      ("eligibility", Test_eligibility.suite);
      ("thresholding", Test_thresholding.suite);
      ("coarsening", Test_coarsening.suite);
      ("aggregation", Test_aggregation.suite);
      ("pipeline", Test_pipeline.suite);
      ("promotion", Test_promotion.suite);
      ("difftest", Test_difftest.suite);
      ("random-programs", Test_random_programs.suite);
      ("multi-site", Test_multisite.suite);
      ("workloads", Test_workloads.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("harness", Test_harness.suite);
      ("pool", Test_pool.suite);
      ("analysis", Test_analysis.suite);
      ("corpus", Test_corpus.suite);
      ("bytecode", Test_bytecode.suite);
      ("failures", Test_failures.suite);
      ("references", Test_references.suite);
      ("autotune+csv+ablation", Test_autotune.suite);
      ("costmodel", Test_costmodel.suite);
      ("serve", Test_serve.suite);
      ("native", Test_native.suite);
      ("env", Test_env.suite);
      ("scale", Test_scale.suite);
      ("tenancy", Test_tenancy.suite);
    ]
