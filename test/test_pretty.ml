(* Pretty-printer tests: specific layouts and parse/print round-trip
   properties over randomly generated ASTs. *)

open Minicu
open Minicu.Ast

let roundtrip_prog name src =
  Alcotest.test_case name `Quick (fun () ->
      let p1 = Parser.program src in
      let printed = Pretty.program p1 in
      let p2 = Parser.program printed in
      if not (equal_program p1 p2) then
        Alcotest.failf "round-trip mismatch; printed:\n%s" printed)

let roundtrip_expr name src =
  Alcotest.test_case name `Quick (fun () ->
      let e1 = Parser.expr_of_string src in
      let printed = Pretty.expr_to_string e1 in
      let e2 = Parser.expr_of_string printed in
      if not (equal_expr e1 e2) then
        Alcotest.failf "round-trip mismatch: %S -> %S" src printed)

(* ---- qcheck generators for expressions and statements ---- *)

let gen_name = QCheck.Gen.oneofl [ "a"; "b"; "n"; "x"; "p"; "q" ]
let gen_ptr_name = QCheck.Gen.oneofl [ "p"; "q" ]

let gen_expr =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self n ->
            if n = 0 then
              oneof
                [
                  map (fun i -> Int_lit (abs i mod 1000)) int;
                  map (fun x -> Var x) gen_name;
                  return (Bool_lit true);
                  return (Float_lit 0.5);
                  map (fun x -> Member (Var "threadIdx", x)) (oneofl [ "x"; "y" ]);
                ]
            else
              let sub = self (n / 2) in
              oneof
                [
                  map2
                    (fun op (a, b) -> Binop (op, a, b))
                    (* every constructor of {!Ast.binop}: the audit must
                       cover each precedence tier, in particular the
                       bitwise tiers and [Mod]/[Gt]/[Ge]/[Shr] that an
                       earlier revision of this generator omitted *)
                    (oneofl
                       [
                         Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne;
                         LAnd; LOr; BAnd; BOr; BXor; Shl; Shr;
                       ])
                    (pair sub sub);
                  (* canonical negation: the parser folds "-<literal>"
                     into the literal, so the generator must too *)
                  map Ast_util.neg sub;
                  map (fun a -> Unop (Not, a)) sub;
                  map3 (fun c a b -> Ternary (c, a, b)) sub sub sub;
                  map2 (fun p i -> Index (Var p, i)) gen_ptr_name sub;
                  map2 (fun p i -> Addr_of (Index (Var p, i))) gen_ptr_name sub;
                  map2 (fun a b -> Call ("min", [ a; b ])) sub sub;
                  map (fun a -> Cast (TInt, a)) sub;
                  map (fun a -> Cast (TFloat, a)) sub;
                  map3 (fun x y z -> Dim3_ctor (x, y, z)) sub sub sub;
                ])
          (min size 14)))

let arbitrary_expr = QCheck.make ~print:Pretty.expr_to_string gen_expr

let expr_roundtrip_prop =
  QCheck.Test.make ~count:1000 ~name:"pretty/parse round-trip on random exprs"
    arbitrary_expr (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.expr_of_string printed with
      | e2 -> equal_expr e e2
      | exception Loc.Error (_, m) ->
          QCheck.Test.fail_reportf "printed %S failed to parse: %s" printed m)

let gen_stmt =
  QCheck.Gen.(
    let expr = gen_expr in
    sized (fun size ->
        fix
          (fun self n ->
            let leaf =
              oneof
                [
                  map2 (fun x e -> stmt (Decl (TInt, x ^ "_d", Some e))) gen_name expr;
                  map2 (fun x e -> stmt (Assign (Var x, e))) gen_name expr;
                  map3
                    (fun p i e -> stmt (Assign (Index (Var p, i), e)))
                    gen_ptr_name expr expr;
                  map (fun e -> stmt (Expr_stmt (Call ("min", [ e; e ])))) expr;
                  return (stmt Sync);
                  return (stmt Threadfence);
                ]
            in
            if n = 0 then leaf
            else
              let sub = list_size (int_range 1 3) (self (n / 2)) in
              oneof
                [
                  leaf;
                  map3 (fun c a b -> stmt (If (c, a, b))) expr sub sub;
                  map2 (fun c b -> stmt (While (c, b))) expr sub;
                  map2
                    (fun e b ->
                      stmt
                        (For
                           ( Some (stmt (Decl (TInt, "i_loop", Some (Int_lit 0)))),
                             Some e,
                             Some
                               (stmt
                                  (Assign
                                     ( Var "i_loop",
                                       Binop (Add, Var "i_loop", Int_lit 1) ))),
                             b )))
                    expr sub;
                ])
          (min size 8)))

let arbitrary_stmt = QCheck.make ~print:Pretty.stmt_to_string gen_stmt

let stmt_roundtrip_prop =
  QCheck.Test.make ~count:300 ~name:"pretty/parse round-trip on random stmts"
    arbitrary_stmt (fun s ->
      let printed = Pretty.stmt_to_string s in
      match Parser.stmt_of_string printed with
      | s2 ->
          (* tags are not printed, so compare modulo tags *)
          equal_stmt (retag_deep Tag_none s) (retag_deep Tag_none s2)
      | exception Loc.Error (_, m) ->
          QCheck.Test.fail_reportf "printed %S failed to parse: %s" printed m)

let suite =
  [
    roundtrip_expr "precedence-sensitive printing" "(a + b) * (c - d)";
    roundtrip_expr "nested ternary" "a ? b : c ? d : e";
    roundtrip_expr "ternary in arg" "f(a ? 1 : 2, b)";
    roundtrip_expr "unary chains" "-(a + -b)";
    roundtrip_expr "shift and compare" "(a << 2) < (b >> 1)";
    roundtrip_expr "index of cast" "((int*)p)[3]";
    roundtrip_prog "kernel with launch"
      {|
__global__ void c(int* d, int n) { int i = threadIdx.x; if (i < n) { d[i] = i; } }
__global__ void p(int* d, int n) { c<<<(n + 31) / 32, 32>>>(d, n); }
|};
    roundtrip_prog "loops and control flow"
      {|
__device__ int f(int x) {
  int s = 0;
  for (int i = 0; i < x; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 100) { break; }
    s = s + i;
  }
  while (s > 10) { s = s / 2; }
  return s;
}
|};
    roundtrip_prog "shared memory and sync"
      {|
__global__ void k(int* d) {
  __shared__ int buf[128];
  buf[threadIdx.x] = d[threadIdx.x];
  __syncthreads();
  __threadfence();
  d[threadIdx.x] = buf[threadIdx.x];
}
|};
    roundtrip_prog "dim3 configs"
      {|
__global__ void c(int* d) { d[0] = 1; }
__global__ void p(int* d) { c<<<dim3(2, 3, 4), dim3(8, 8, 1)>>>(d); }
|};
    Alcotest.test_case "ty_to_string" `Quick (fun () ->
        Alcotest.(check string) "ptr ptr" "int**"
          (Pretty.ty_to_string (TPtr (TPtr TInt)));
        Alcotest.(check string) "dim3" "dim3" (Pretty.ty_to_string TDim3));
    Alcotest.test_case "float literals stay parseable" `Quick (fun () ->
        List.iter
          (fun f ->
            let printed = Pretty.expr_to_string (Float_lit f) in
            match Parser.expr_of_string printed with
            | Float_lit f2 when f2 = f -> ()
            | e -> Alcotest.failf "%g printed as %s parsed to %s" f printed
                     (show_expr e))
          [ 0.0; 1.0; 0.5; 1e-9; 3.14159265358979; 1234567.0 ]);
    QCheck_alcotest.to_alcotest expr_roundtrip_prop;
    QCheck_alcotest.to_alcotest stmt_roundtrip_prop;
    Alcotest.test_case "large float literals keep a float marker" `Quick
      (fun () ->
        (* %.17g prints 1e15 as "1000000000000000" — without the forced
           ".0" suffix it would re-lex as an int literal and change the
           program's canonical digest (lib/serve keys on it) *)
        List.iter
          (fun f ->
            let printed = Pretty.expr_to_string (Float_lit f) in
            Alcotest.(check bool)
              (Fmt.str "%s has a marker" printed)
              true
              (String.exists
                 (fun ch -> ch = '.' || ch = 'e' || ch = 'E')
                 printed);
            match Parser.expr_of_string printed with
            | Float_lit f2 when f2 = f -> ()
            | e ->
                Alcotest.failf "%h printed as %s parsed to %s" f printed
                  (show_expr e))
          [ 1e15; 1e16; 1e22; -1e15; 123456789012345678.0 ]);
    Alcotest.test_case "negative literals parse folded" `Quick (fun () ->
        (* the parser folds unary minus into numeric literals, so printed
           negative literals round-trip structurally *)
        let e s = Parser.expr_of_string s in
        Alcotest.(check bool) "int" true (e "-5" = Int_lit (-5));
        Alcotest.(check bool) "float" true (e "-0.5" = Float_lit (-0.5));
        Alcotest.(check bool) "non-literal stays a Neg" true
          (e "-x" = Unop (Neg, Var "x"));
        Alcotest.(check bool) "double negation folds through" true
          (e "- -5" = Int_lit 5);
        Alcotest.(check bool) "smart constructor agrees" true
          (Ast_util.neg (Int_lit 3) = Int_lit (-3));
        (* float zero is exempt: -0.0 = 0.0 structurally but prints
           differently, so folding it would break print/parse identity *)
        Alcotest.(check bool) "minus float-zero stays a Neg" true
          (Ast_util.neg (Float_lit 0.0) = Unop (Neg, Float_lit 0.0)));
    Alcotest.test_case "difftest corpus round-trips parse(pretty(p))" `Quick
      (fun () ->
        (* the compile service's canonical digest assumes parse . pretty
           is the identity on every program the traffic generator can
           emit (slocs exempt: equal_program ignores them) *)
        for seed = 0 to 149 do
          let p = Difftest.Gen.build (Difftest.Gen.case_of_seed seed) in
          let printed = Pretty.program p in
          let p2 = Parser.program printed in
          if not (equal_program p p2) then
            Alcotest.failf "seed %d: parse(pretty(p)) <> p; printed:\n%s" seed
              printed;
          Alcotest.(check string)
            (Fmt.str "seed %d: pretty is a fixpoint" seed)
            printed (Pretty.program p2)
        done);
  ]
