(** dpoptc — the source-to-source compiler CLI.

    Reads a MiniCU (.cu-like) file, applies any combination of the three
    dynamic-parallelism optimizations in the canonical order (thresholding,
    coarsening, aggregation — paper Fig. 8a), and writes the transformed
    source. Mirrors the paper's artifact workflow: .cu in, .cu out.

    Examples:

    {v
    dpoptc input.cu                      # parse + typecheck + print
    dpoptc -T 128 input.cu               # thresholding at 128
    dpoptc -T 128 -C 8 -A multiblock:16 input.cu -o out.cu
    dpoptc -A grid --report input.cu     # + per-site transformation report
    v} *)

open Cmdliner

let granularity_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "warp" -> Ok Dpopt.Aggregation.Warp
    | "block" -> Ok Dpopt.Aggregation.Block
    | "grid" -> Ok Dpopt.Aggregation.Grid
    | s -> (
        match String.index_opt s ':' with
        | Some i
          when String.sub s 0 i = "multiblock"
               || String.sub s 0 i = "multi-block" -> (
            let g = String.sub s (i + 1) (String.length s - i - 1) in
            match int_of_string_opt g with
            | Some g when g > 0 -> Ok (Dpopt.Aggregation.Multi_block g)
            | _ -> Error (`Msg "multiblock:<n> needs a positive integer"))
        | _ ->
            Error
              (`Msg
                (Fmt.str
                   "unknown granularity %S (expected warp | block | \
                    multiblock:<n> | grid)"
                   s)))
  in
  Arg.conv (parse, fun ppf g -> Dpopt.Aggregation.pp_granularity ppf g)

let input =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"INPUT" ~doc:"MiniCU source file to transform.")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write transformed source to $(docv) (default: stdout).")

let threshold =
  Arg.(
    value
    & opt (some int) None
    & info [ "T"; "threshold" ] ~docv:"N"
        ~doc:
          "Enable the thresholding pass: launch a child grid only if the \
           desired number of child threads is at least $(docv); serialize \
           in the parent otherwise.")

let cfactor =
  Arg.(
    value
    & opt (some int) None
    & info [ "C"; "coarsen" ] ~docv:"FACTOR"
        ~doc:
          "Enable the coarsening pass: each coarsened child block executes \
           the work of $(docv) original blocks.")

let granularity =
  Arg.(
    value
    & opt (some granularity_conv) None
    & info [ "A"; "aggregate" ] ~docv:"GRAN"
        ~doc:
          "Enable the aggregation pass at granularity $(docv): warp, block, \
           multiblock:<n>, or grid.")

let agg_threshold =
  Arg.(
    value
    & opt (some int) None
    & info [ "agg-threshold" ] ~docv:"N"
        ~doc:
          "Aggregation threshold (Section V-B): aggregate only if at least \
           $(docv) parents in the group participate; otherwise they launch \
           directly. Warp/block granularity only.")

let report =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:"Print a per-launch-site transformation report to stderr.")

let emit_native =
  Arg.(
    value & flag
    & info [ "emit-native" ]
        ~doc:
          "After the passes, write parallel OCaml (the native backend's \
           kernel module, compiling against its $(b,Nrt) runtime) instead \
           of MiniCU source. Exits 1 with a one-line diagnostic on \
           constructs the backend rejects ($(b,__threadfence), warp \
           collectives, grid-granularity aggregation).")

let promote =
  Arg.(
    value & flag
    & info [ "promote" ]
        ~doc:
          "Also apply KLAP's promotion to eligible self-recursive \
           single-block kernels (the Section IX pattern T/C/A cannot help).")

let engine_conv =
  let parse s =
    match Gpusim.Config.engine_of_string s with
    | Some e -> Ok e
    | None ->
        Error (`Msg (Fmt.str "unknown engine %S (expected closure | bytecode)" s))
  in
  Arg.conv (parse, Gpusim.Config.pp_engine)

let engine =
  Arg.(
    value & opt engine_conv Gpusim.Config.default.engine
    & info [ "engine" ] ~docv:"E"
        ~doc:
          "Simulator execution engine for $(b,--check) dynamic runs: \
           $(b,closure) (closure-tree interpreter) or $(b,bytecode) (flat \
           bytecode/register VM). Both are semantically identical; the \
           sanitizer's race and bounds findings do not depend on the \
           choice.")

let check_only =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Run the dpcheck sanitizer instead of writing output: static \
           lints (divergent barriers, warp-scope ops under divergence, \
           constant out-of-bounds) on the input and on every pass \
           combination's output, plus dynamic race/OOB detection for any \
           CHECK-RUN directives in the file. Exits non-zero on findings.")

let predict =
  Arg.(
    value & flag
    & info [ "predict" ]
        ~doc:
          "Instead of writing output, score all 8 pass combinations with \
           the analytical cost model (lib/costmodel) against a synthetic \
           workload profile ($(b,--items), $(b,--mean-size), $(b,--skew), \
           $(b,--rounds), $(b,--parent-block)) and print the predicted \
           ranking with per-term breakdowns. $(b,-T)/$(b,-C)/$(b,-A) set \
           the knob values the combinations use.")

let items =
  Arg.(
    value & opt int 1024
    & info [ "items" ] ~docv:"N"
        ~doc:"Parent work items of the synthetic profile ($(b,--predict)).")

let mean_size =
  Arg.(
    value & opt int 64
    & info [ "mean-size" ] ~docv:"N"
        ~doc:"Mean child-grid size of the synthetic profile.")

let skew =
  Arg.(
    value & opt float 0.5
    & info [ "skew" ] ~docv:"S"
        ~doc:"Size-distribution skew in [0, 1]: 0 uniform, 1 heavy-tailed.")

let rounds =
  Arg.(
    value & opt int 1
    & info [ "rounds" ] ~docv:"N"
        ~doc:"Host launches of the parent kernel over the modelled run.")

let parent_block =
  Arg.(
    value & opt int 128
    & info [ "parent-block" ] ~docv:"N"
        ~doc:"Threads per block of the parent launches.")

(* Score all 8 pass combinations with the cost model against a synthetic
   profile; the parent kernel is the first __global__ with a launch site. *)
let run_predict ~input ~prog ~threshold ~cfactor ~granularity ~agg_threshold
    ~items ~mean_size ~skew ~rounds ~parent_block =
  match
    List.find_opt
      (fun (f : Minicu.Ast.func) ->
        f.f_kind = Minicu.Ast.Global
        && Minicu.Ast_util.launch_sites f.f_body <> [])
      prog
  with
  | None ->
      Fmt.epr "%s: no kernel with a device launch site; nothing to predict@."
        input;
      1
  | Some parent ->
      let profile =
        Costmodel.Profile.synthetic ~rounds ~parent_block ~items:(max 1 items)
          ~mean:(max 1 mean_size) ~skew ()
      in
      let coeffs = Costmodel.Table.current in
      let scored =
        List.map
          (fun (label, opts) ->
            let f =
              Costmodel.Feature.extract ~prog ~parent_kernel:parent.f_name
                ~profile ~opts ~label ()
            in
            (label, Costmodel.Model.predict coeffs f,
             Costmodel.Model.breakdown coeffs f))
          (Dpopt.Pipeline.enumerate ?threshold ?cfactor ?granularity
             ?agg_threshold ())
      in
      let ranking =
        List.stable_sort (fun (_, a, _) (_, b, _) -> Float.compare a b) scored
      in
      Fmt.pr
        "=== predicted ranking: %s (parent %s; %d items, mean size %d, skew \
         %.2f, %d round%s; model v%d) ===@."
        input parent.f_name items mean_size skew rounds
        (if rounds = 1 then "" else "s")
        coeffs.Costmodel.Model.version;
      List.iteri
        (fun i (label, cycles, bd) ->
          Fmt.pr "%2d. %-12s %12.0f cycles  [%a]@." (i + 1) label cycles
            Costmodel.Model.pp_breakdown bd)
        ranking;
      0

let run input output threshold cfactor granularity agg_threshold promote
    report check_only engine predict items mean_size skew rounds parent_block
    emit_native =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  let dyn_cfg = { Gpusim.Config.test_config with engine } in
  (* Shared with dpoptd's job rejection (lib/serve): user errors come out
     as one-line loc-bearing diagnostics and exit 1, never a backtrace;
     anything unrecognized exits 125 with a one-line internal error. *)
  Serve.Errors.exit_of ~file:input @@ fun () ->
  let src = In_channel.with_open_text input In_channel.input_all in
  match
    let prog = Minicu.Parser.program ~file:input src in
    Minicu.Typecheck.check prog;
    if predict then
      `Code
        (run_predict ~input ~prog ~threshold ~cfactor ~granularity
           ~agg_threshold ~items ~mean_size ~skew ~rounds ~parent_block)
    else if check_only then begin
      let rep =
        Analysis.Dpcheck.check ?threshold ?cfactor ?granularity ?agg_threshold
          prog
      in
      let dirs = Analysis.Dynamic.directives src in
      let dynamic =
        if dirs = [] then []
        else
          (* the input first, then — if it is statically sound — every
             pass combination's output under the same directives *)
          let on_input =
            List.map
              (fun f -> ("input", f))
              (Analysis.Dynamic.run ~cfg:dyn_cfg prog dirs)
          in
          let on_combos =
            if Analysis.Dpcheck.error_count rep > 0 then []
            else
              List.concat_map
                (fun (label, opts) ->
                  let r = Dpopt.Pipeline.run ~opts prog in
                  List.map
                    (fun f -> (label, f))
                    (Analysis.Dynamic.run ~cfg:dyn_cfg
                       ~auto_params:r.auto_params r.prog dirs))
                (Dpopt.Pipeline.enumerate ?threshold ?cfactor ?granularity
                   ?agg_threshold ())
          in
          on_input @ on_combos
      in
      `Checked (rep, dirs, dynamic)
    end
    else
      let opts =
        Dpopt.Pipeline.make ?threshold ?cfactor ?granularity ?agg_threshold ()
      in
      let r = Dpopt.Pipeline.run ~opts prog in
      if promote then begin
        let p = Dpopt.Promotion.transform r.prog in
        Minicu.Typecheck.check p.prog;
        List.iter
          (fun (sr : Dpopt.Promotion.site_report) ->
            if report then
              Fmt.epr "promotion %s: %s (%s)@." sr.sr_kernel
                (if sr.sr_transformed then "promoted" else "skipped")
                sr.sr_reason)
          p.reports;
        `Result { r with prog = p.prog }
      end
      else `Result r
  with
  | `Code n -> n
  | `Checked (rep, dirs, dynamic) ->
      Analysis.Dpcheck.pp Fmt.stderr rep;
      List.iter (fun (label, f) -> Fmt.epr "[%s] %s@." label f) dynamic;
      let problems = Analysis.Dpcheck.error_count rep + List.length dynamic in
      if problems = 0 then begin
        Fmt.epr "%s: OK (%d pass combinations clean%s)@." input
          (List.length rep.combos)
          (if dirs = [] then ""
           else
             Fmt.str ", %d sanitized directive runs"
               (List.length dirs * (List.length rep.combos + 1)));
        0
      end
      else begin
        Fmt.epr "%s: %d problem(s)@." input problems;
        1
      end
  | `Result r ->
      let text =
        if emit_native then Native.Emit.program r.prog
        else Minicu.Pretty.program r.prog
      in
      (match output with
      | None -> print_string text
      | Some f -> Out_channel.with_open_text f (fun oc ->
            Out_channel.output_string oc text));
      if report then begin
        List.iter
          (fun (sr : Dpopt.Thresholding.site_report) ->
            Fmt.epr "thresholding %s -> %s: %s (%s)@." sr.sr_parent sr.sr_child
              (if sr.sr_transformed then "transformed" else "skipped")
              sr.sr_reason)
          r.threshold_reports;
        List.iter
          (fun (sr : Dpopt.Coarsening.site_report) ->
            Fmt.epr "coarsening %s -> %s: %s (%s)@." sr.sr_parent sr.sr_child
              (if sr.sr_transformed then "transformed" else "skipped")
              sr.sr_reason)
          r.coarsen_reports;
        List.iter
          (fun (sr : Dpopt.Aggregation.site_report) ->
            Fmt.epr "aggregation %s -> %s: %s (%s)@." sr.sr_parent sr.sr_child
              (if sr.sr_transformed then "transformed" else "skipped")
              sr.sr_reason)
          r.agg_reports;
        if r.auto_params <> [] then
          List.iter
            (fun (k, aps) ->
              Fmt.epr
                "note: kernel %S gained %d runtime-allocated buffer \
                 parameters@."
                k (List.length aps))
            r.auto_params;
        (* which output kernels the simulator may batch-dispatch in
           parallel, and which fall back to serial (and why) *)
        Analysis.Parsafety.pp Fmt.stderr (Analysis.Parsafety.report r.prog)
      end;
      0

let cmd =
  let doc =
    "optimize dynamic parallelism in CUDA-like kernels (thresholding, \
     coarsening, aggregation)"
  in
  Cmd.v
    (Cmd.info "dpoptc" ~version:"1.0.0" ~doc)
    Term.(
      const run $ input $ output $ threshold $ cfactor $ granularity
      $ agg_threshold $ promote $ report $ check_only $ engine $ predict
      $ items $ mean_size $ skew $ rounds $ parent_block $ emit_native)

let () = exit (Cmd.eval' cmd)
