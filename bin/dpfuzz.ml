(** dpfuzz — differential fuzzer for the optimization passes.

    Generates random nested-parallel MiniCU programs ({!Difftest.Gen}),
    compiles each under every requested pass combination, runs all of them
    under several simulator configurations, and requires bit-identical
    device memory plus consistent launch metrics against the untransformed
    baseline ({!Difftest.Oracle}). On a counterexample, greedily shrinks it
    ({!Difftest.Shrink}) and prints the minimized MiniCU reproducer with
    its generative seed.

    {v
    dpfuzz --iters 200                      # bounded fuzz budget (CI)
    dpfuzz --iters 200 -j 4                 # same, sharded over 4 domains
    dpfuzz --seed 12345 --iters 1           # replay one reported case
    dpfuzz --passes t,c                     # restrict to two passes
    dpfuzz --iters 50 --inject-bug          # demo: a broken coarsening
                                            # variant must be caught
    dpfuzz --iters 200 --check              # also run the dpcheck
                                            # sanitizer on every variant
    dpfuzz --iters 200 --engine both        # cross-engine differential:
                                            # every variant under both the
                                            # closure and bytecode engines
    dpfuzz --iters 5 --backend native       # true-parallelism oracle: also
                                            # transpile, compile and run each
                                            # supported variant as parallel
                                            # OCaml and diff its memory dump
                                            # against the simulated baseline
    v}

    With [-j N] the seed range is evaluated on a {!Harness.Pool}; the
    report stream is replayed in seed order afterwards and the lowest
    failing seed wins, so stdout is byte-identical to [-j 1].

    Exit code 0: all cases equivalent; 1: a counterexample was found
    (printed, shrunk); 2: usage error. *)

open Cmdliner

let iters =
  Arg.(
    value & opt (some int) None
    & info [ "iters" ] ~docv:"N"
        ~doc:
          "Number of random cases to check. Defaults to the DPFUZZ_ITERS \
           knob — or DPCHECK_ITERS under $(b,--check) — consolidated in \
           Harness.Env.")

let seed =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"S"
        ~doc:
          "Base seed: case $(i,i) is derived deterministically from seed \
           $(docv)+$(i,i), so any reported failure replays with \
           $(b,--seed) <reported> $(b,--iters) 1.")

let passes =
  Arg.(
    value & opt string "t,c,a"
    & info [ "passes" ] ~docv:"P"
        ~doc:
          "Comma-separated subset of $(b,t),$(b,c),$(b,a): which passes \
           participate in the variant enumeration.")

let threshold =
  Arg.(
    value & opt int 9
    & info [ "threshold" ] ~docv:"N" ~doc:"Thresholding knob under test.")

let cfactor =
  Arg.(
    value & opt int 3
    & info [ "cfactor" ] ~docv:"N" ~doc:"Coarsening knob under test.")

let configs =
  Arg.(
    value
    & opt (list string) (List.map fst Difftest.Oracle.sim_configs)
    & info [ "configs" ] ~docv:"C"
        ~doc:"Simulator configurations to replay under (unit, volta, one-sm).")

let engine =
  Arg.(
    value & opt string "closure"
    & info [ "engine" ] ~docv:"E"
        ~doc:
          "Execution engine(s) to replay under: $(b,closure), $(b,bytecode), \
           or $(b,both). With $(b,both) the oracle runs every variant under \
           both engines against the closure-engine baseline — a \
           cross-engine differential fuzz that catches bytecode-engine \
           miscompiles even when they are transformation-independent.")

let backend =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Oracle backend axis: $(b,sim) (default) checks variants in the \
           simulator only; $(b,native) additionally transpiles every \
           supported variant to parallel OCaml, compiles and runs it on \
           host domains, and requires its memory dump to match the \
           simulated baseline — a true-parallelism oracle (slow: one \
           nested dune build per case; size the budget with --iters).")

let inject_bug =
  Arg.(
    value & flag
    & info [ "inject-bug" ]
        ~doc:
          "Add a deliberately broken coarsening variant (drops the \
           remainder iterations of the coarsening loop). The oracle is \
           expected to catch it: the run should exit 1 with a shrunk \
           reproducer. Combined with $(b,--check), also adds a \
           memory-neutral racy variant that only the sanitizer can catch.")

let check =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Sanitize mode: additionally require every fuzzed program and \
           every variant's output to be dpcheck-clean — no static \
           divergence/bounds errors, and no data races when replayed \
           under the dynamic race detector.")

let progress_every =
  Arg.(
    value & opt int 50
    & info [ "progress" ] ~docv:"N"
        ~doc:"Print a progress line every $(docv) cases (0: silent).")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Shard the seed range across $(docv) worker domains. Reports are \
           emitted in seed order once the batch settles, and the first \
           failure is the $(i,lowest) failing seed regardless of which \
           domain finished first, so stdout is byte-identical to \
           $(b,-j 1).")

let parse_passes s =
  let parts =
    String.split_on_char ',' (String.lowercase_ascii s)
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let bad = List.filter (fun p -> not (List.mem p [ "t"; "c"; "a" ])) parts in
  if bad <> [] then
    Error (Fmt.str "unknown pass %S (expected a subset of t,c,a)" (List.hd bad))
  else
    Ok
      ( List.mem "t" parts,
        List.mem "c" parts,
        List.mem "a" parts )

let report_failure ~shrunk_from (case : Difftest.Gen.case)
    (f : Difftest.Oracle.failure) =
  Fmt.pr "@.=== counterexample ===@.";
  Fmt.pr "%a@." Difftest.Oracle.pp_failure f;
  (if shrunk_from > 0 then
     Fmt.pr "shrunk: %d -> %d AST+workload nodes, %d non-empty source lines@."
       shrunk_from (Difftest.Shrink.case_size case) (Difftest.Gen.source_lines case));
  Fmt.pr "workload: block=%d idiom=%d data_mod=%d degs=%a@." case.block
    case.idiom case.data_mod
    Fmt.(Dump.array int)
    case.degs;
  Fmt.pr "--- reproducer (MiniCU) ---@.%s@." (Difftest.Gen.source case);
  if case.seed >= 0 then
    Fmt.pr "replay: dpfuzz --seed %d --iters 1@." case.seed
  else
    Fmt.pr "(structurally shrunk: no longer seed-derivable; original seed \
            printed above)@."

let parse_engines = function
  | "closure" -> Ok [ Difftest.Oracle.closure_engine ]
  | "bytecode" -> Ok [ Difftest.Oracle.bytecode_engine ]
  | "both" -> Ok Difftest.Oracle.all_engines
  | s -> Error (Fmt.str "unknown engine %S (expected closure|bytecode|both)" s)

let run iters seed passes threshold cfactor config_names engine_name backend
    inject_bug sanitize progress_every jobs =
  let native = backend = `Native in
  let iters =
    match iters with
    | Some n -> n
    | None ->
        Harness.Env.get (if sanitize then "DPCHECK_ITERS" else "DPFUZZ_ITERS")
  in
  match (parse_passes passes, parse_engines engine_name) with
  | Error msg, _ | _, Error msg ->
      Fmt.epr "dpfuzz: %s@." msg;
      2
  | Ok (with_thresholding, with_coarsening, with_aggregation), Ok engines -> (
      let configs =
        List.filter
          (fun (name, _) -> List.mem name config_names)
          Difftest.Oracle.sim_configs
      in
      match
        List.filter
          (fun n -> not (List.mem_assoc n Difftest.Oracle.sim_configs))
          config_names
      with
      | bad :: _ ->
          Fmt.epr "dpfuzz: unknown config %S (expected: %s)@." bad
            (String.concat ", " (List.map fst Difftest.Oracle.sim_configs));
          2
      | [] ->
          let variants =
            Difftest.Oracle.default_variants ~threshold ~cfactor
              ~with_thresholding ~with_coarsening ~with_aggregation ()
            @ (if inject_bug then
                 [ Difftest.Oracle.broken_coarsening ~cfactor () ]
               else [])
            @
            if inject_bug && sanitize then [ Difftest.Oracle.racy_injection () ]
            else []
          in
          let t0 = Unix.gettimeofday () in
          (* Evaluate the seed range on the pool. [first_fail] holds the
             lowest failing index observed so far: a job may skip its case
             when a lower seed already failed — any skipped index is
             therefore strictly above the final first failure, so every
             index at or below it is fully evaluated and the replayed
             report stream below is exact. Jobs never print (pool
             contract); all reporting happens afterwards, in seed order,
             identically at every -j level. *)
          let first_fail = Atomic.make max_int in
          let eval i =
            if i > Atomic.get first_fail then None
            else
              let case = Difftest.Gen.case_of_seed (seed + i) in
              let outcome =
                Difftest.Oracle.check ~sanitize ~native ~engines ~variants
                  ~configs case
              in
              (match outcome with
              | Fail _ ->
                  let rec lower () =
                    let cur = Atomic.get first_fail in
                    if i < cur && not (Atomic.compare_and_set first_fail cur i)
                    then lower ()
                  in
                  lower ()
              | Pass | Invalid _ -> ());
              Some (case, outcome)
          in
          let results =
            Harness.Pool.with_pool ~jobs (fun pool ->
                Harness.Pool.run pool eval iters)
          in
          let fail =
            let rec find i =
              if i >= iters then None
              else
                match results.(i) with
                | Some (case, Difftest.Oracle.Fail f) -> Some (i, case, f)
                | _ -> find (i + 1)
            in
            find 0
          in
          (* replay the report stream exactly as a sequential run emits it:
             progress on stdout, invalid-case notes on stderr, in seed
             order, stopping at the first failure *)
          let limit = match fail with Some (i, _, _) -> i | None -> iters - 1 in
          let invalid = ref 0 in
          for i = 0 to limit do
            if progress_every > 0 && i > 0 && i mod progress_every = 0 then
              Fmt.pr "... %d/%d cases checked@." i iters;
            match results.(i) with
            | Some (_, Difftest.Oracle.Invalid msg) ->
                (* a generator bug, not a compiler bug: report loudly but
                   keep fuzzing *)
                incr invalid;
                Fmt.epr "dpfuzz: seed %d generated an invalid case: %s@."
                  (seed + i) msg
            | _ -> ()
          done;
          (* host timing: stderr, so stdout stays byte-identical across
             -j levels and runs *)
          Fmt.epr "dpfuzz: %.1fs wall at -j %d@." (Unix.gettimeofday () -. t0)
            jobs;
          (match fail with
          | None ->
              Fmt.pr
                "dpfuzz: %d cases x %d variants x %d configs x %d engines: \
                 all equivalent%s@."
                iters (List.length variants) (List.length configs)
                (List.length engines)
                (if !invalid > 0 then
                   Fmt.str " (%d invalid cases skipped)" !invalid
                 else "");
              if !invalid > 0 then 2 else 0
          | Some (_, case, f) ->
              (* shrink against the specific failing variant + config *)
              let failing_variant =
                List.filter
                  (fun (v : Difftest.Oracle.variant) -> v.v_label = f.f_variant)
                  variants
              in
              let failing_config =
                List.filter (fun (n, _) -> n = f.f_config) configs
              in
              (* Shrink under the failing engine only — but keep the
                 baseline engine in front so cross-engine comparisons
                 still compare against the same baseline. *)
              let failing_engines =
                match f.f_engine with
                | Some e when e <> fst (List.hd engines) ->
                    [ List.hd engines ]
                    @ List.filter (fun (n, _) -> n = e) engines
                | _ -> [ List.hd engines ]
              in
              (* shrink under the native axis only when the failure came
                 from it — keeps shrinking fast for simulator failures *)
              let native = native && f.f_engine = Some "native" in
              let still_fails c =
                match
                  Difftest.Oracle.check ~sanitize ~native
                    ~engines:failing_engines ~variants:failing_variant
                    ~configs:failing_config c
                with
                | Fail _ -> true
                | Pass | Invalid _ -> false
              in
              let size0 = Difftest.Shrink.case_size case in
              let small = Difftest.Shrink.minimize ~still_fails case in
              let f' =
                match
                  Difftest.Oracle.check ~sanitize ~native
                    ~engines:failing_engines ~variants:failing_variant
                    ~configs:failing_config small
                with
                | Fail f' -> f'
                | Pass | Invalid _ -> f (* unreachable: minimize preserves failure *)
              in
              Fmt.pr "dpfuzz: counterexample at seed %d (case %d/%d)@."
                case.seed
                (case.seed - seed + 1)
                iters;
              report_failure ~shrunk_from:size0 { small with seed = case.seed }
                f';
              1))

let cmd =
  let doc =
    "differential fuzzing of the dynamic-parallelism optimization passes"
  in
  Cmd.v
    (Cmd.info "dpfuzz" ~version:"1.0.0" ~doc)
    Term.(
      const run $ iters $ seed $ passes $ threshold $ cfactor $ configs
      $ engine $ backend $ inject_bug $ check $ progress_every $ jobs)

let () = exit (Cmd.eval' cmd)
