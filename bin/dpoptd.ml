(** dpoptd — the batched compile service CLI.

    Front end to {!Serve.Engine}: a content-addressed, stage-memoizing
    compile daemon driven either by a batch of input files or by the
    deterministic synthetic traffic generator ({!Serve.Traffic}).

    {v
    dpoptd a.cu b.cu -T 128 -j 4          # batch-compile, status per file
    dpoptd a.cu --emit out/               # also write out/a.cu
    dpoptd --traffic --requests 400 \
           --json BENCH_serve.json \
           --min-hit-rate 0.5             # cold+warm replay, metrics gate
    v}

    Exit codes: 0 — all jobs compiled (and gates passed); 1 — a job was
    rejected with a diagnostic, or a [--min-hit-rate]/[--min-speedup]
    gate failed; 125 — internal error (one line, never a backtrace). *)

open Cmdliner

let granularity_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "warp" -> Ok Dpopt.Aggregation.Warp
    | "block" -> Ok Dpopt.Aggregation.Block
    | "grid" -> Ok Dpopt.Aggregation.Grid
    | s -> (
        match String.index_opt s ':' with
        | Some i
          when String.sub s 0 i = "multiblock"
               || String.sub s 0 i = "multi-block" -> (
            let g = String.sub s (i + 1) (String.length s - i - 1) in
            match int_of_string_opt g with
            | Some g when g > 0 -> Ok (Dpopt.Aggregation.Multi_block g)
            | _ -> Error (`Msg "multiblock:<n> needs a positive integer"))
        | _ ->
            Error
              (`Msg
                (Fmt.str
                   "unknown granularity %S (expected warp | block | \
                    multiblock:<n> | grid)"
                   s)))
  in
  Arg.conv (parse, fun ppf g -> Dpopt.Aggregation.pp_granularity ppf g)

let inputs =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"INPUT" ~doc:"MiniCU source files to batch-compile.")

let threshold =
  Arg.(
    value
    & opt (some int) None
    & info [ "T"; "threshold" ] ~docv:"N" ~doc:"Thresholding pass knob.")

let cfactor =
  Arg.(
    value
    & opt (some int) None
    & info [ "C"; "coarsen" ] ~docv:"FACTOR" ~doc:"Coarsening pass knob.")

let granularity =
  Arg.(
    value
    & opt (some granularity_conv) None
    & info [ "A"; "aggregate" ] ~docv:"GRAN"
        ~doc:"Aggregation granularity: warp, block, multiblock:<n>, grid.")

let agg_threshold =
  Arg.(
    value
    & opt (some int) None
    & info [ "agg-threshold" ] ~docv:"N"
        ~doc:"Aggregation threshold (warp/block granularity only).")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains of the compile pool.")

let emit =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~docv:"DIR"
        ~doc:"Write each job's optimized source to $(docv)/<basename>.")

let traffic =
  Arg.(
    value & flag
    & info [ "traffic" ]
        ~doc:
          "Ignore INPUTs and replay the deterministic synthetic request \
           stream twice (cold cache, then warm) through one engine; print \
           throughput, hit rates and latency percentiles.")

let seed =
  Arg.(
    value & opt int Serve.Traffic.default.seed
    & info [ "seed" ] ~docv:"N" ~doc:"Traffic stream seed.")

let distinct =
  Arg.(
    value & opt int Serve.Traffic.default.distinct
    & info [ "distinct" ] ~docv:"N"
        ~doc:"Distinct jobs in the traffic catalog.")

(* --requests defaults through DPOPTD_REQS so the @serve smoke can be
   sized from the environment, like DPFUZZ_ITERS for @fuzz. *)
let requests =
  Arg.(
    value
    & opt (some int) None
    & info [ "requests" ] ~docv:"N"
        ~doc:
          "Total traffic requests (default: $(b,DPOPTD_REQS) from the \
           environment, else 200).")

let zipf =
  Arg.(
    value & opt float Serve.Traffic.default.zipf_s
    & info [ "zipf" ] ~docv:"S"
        ~doc:"Zipf exponent of the rank distribution (0 = uniform).")

let burst =
  Arg.(
    value & opt int Serve.Traffic.default.burst
    & info [ "burst" ] ~docv:"N" ~doc:"Maximum requests per batch.")

let no_profiles =
  Arg.(
    value & flag
    & info [ "no-profiles" ]
        ~doc:"Generate traffic without cost-model profiles.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the run's metrics JSON to $(docv) (traffic mode).")

let min_hit_rate =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-hit-rate" ] ~docv:"F"
        ~doc:"Fail (exit 1) if the warm pass's cache hit rate is below \
              $(docv).")

let min_speedup =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-speedup" ] ~docv:"F"
        ~doc:"Fail (exit 1) if warm/cold throughput ratio is below $(docv).")

let run_traffic ~jobs ~seed ~distinct ~requests ~zipf ~burst ~profiles
    ~json_out ~min_hit_rate ~min_speedup =
  let cfg =
    {
      Serve.Traffic.seed;
      distinct;
      requests;
      zipf_s = zipf;
      burst;
      with_profiles = profiles;
    }
  in
  let r = Serve.Traffic.replay ~jobs cfg in
  let s = r.snapshot in
  Fmt.pr
    "dpoptd traffic: %d requests in %d batches (seed %d, %d distinct, zipf \
     %.2f, %d job%s)@."
    r.total r.batches seed distinct zipf jobs (if jobs = 1 then "" else "s");
  Fmt.pr "  cold %.3fs, warm %.3fs — %.1fx; responses %s@." r.cold_s r.warm_s
    r.speedup
    (if r.identical then "byte-identical" else "DIVERGED");
  Fmt.pr "  warm hit rate %.1f%%; cache: %d entries, %d bytes, %d evictions@."
    (100.0 *. r.warm_hit_rate) r.cache.Serve.Lru.entries
    r.cache.Serve.Lru.bytes r.cache.Serve.Lru.evictions;
  Fmt.pr "  latency p50 %.2fms p90 %.2fms p99 %.2fms over %d requests@."
    s.p50_ms s.p90_ms s.p99_ms s.requests;
  (match json_out with
  | None -> ()
  | Some f ->
      Out_channel.with_open_text f (fun oc ->
          Out_channel.output_string oc (Serve.Traffic.json_of_run r);
          Out_channel.output_char oc '\n');
      Fmt.pr "  wrote %s@." f);
  let fail fmt = Fmt.epr fmt in
  let bad = ref false in
  if not r.identical then begin
    fail "dpoptd: warm responses diverged from cold responses@.";
    bad := true
  end;
  if r.rejected > 0 then begin
    fail "dpoptd: %d generated job(s) rejected@." r.rejected;
    bad := true
  end;
  (match min_hit_rate with
  | Some m when not (r.warm_hit_rate >= m) ->
      fail "dpoptd: warm hit rate %.3f below required %.3f@." r.warm_hit_rate m;
      bad := true
  | _ -> ());
  (match min_speedup with
  | Some m when not (r.speedup >= m) ->
      fail "dpoptd: warm speedup %.2fx below required %.2fx@." r.speedup m;
      bad := true
  | _ -> ());
  if !bad then 1 else 0

let run_batch ~inputs ~opts ~jobs ~emit =
  let eng = Serve.Engine.create () in
  let reqs =
    List.map
      (fun file ->
        let src =
          match
            Serve.Errors.guard ~file (fun () ->
                In_channel.with_open_text file In_channel.input_all)
          with
          | Ok src -> Some src
          | Error d ->
              Fmt.epr "%s@." d;
              None
        in
        (file, src))
      inputs
  in
  let jobs_in =
    List.filter_map
      (fun (file, src) ->
        Option.map
          (fun src ->
            {
              Serve.Engine.rq_file = file;
              rq_src = src;
              rq_opts = opts;
              rq_profile = None;
            })
          src)
      reqs
  in
  let results =
    Harness.Pool.with_pool ~jobs (fun pool ->
        Serve.Engine.compile_batch ~pool eng jobs_in)
  in
  let failures = ref (List.length reqs - List.length jobs_in) in
  List.iter2
    (fun (rq : Serve.Engine.request) -> function
      | Error diag ->
          incr failures;
          Fmt.epr "%s@." diag
      | Ok (rs : Serve.Engine.response) ->
          List.iter (fun d -> Fmt.epr "%s@." d) rs.rs_diags;
          Fmt.pr "%s: ok [%s]%s%s@." rq.rq_file rs.rs_label
            (match rs.rs_diags with
            | [] -> ""
            | ds -> Fmt.str " (%d diagnostic(s))" (List.length ds))
            (match rs.rs_predicted with
            | None -> ""
            | Some c -> Fmt.str " (predicted %.0f cycles)" c);
          Option.iter
            (fun dir ->
              let out = Filename.concat dir (Filename.basename rq.rq_file) in
              Out_channel.with_open_text out (fun oc ->
                  Out_channel.output_string oc rs.rs_optimized))
            emit)
    jobs_in results;
  if !failures > 0 then begin
    Fmt.epr "dpoptd: %d job(s) rejected@." !failures;
    1
  end
  else 0

let run inputs threshold cfactor granularity agg_threshold jobs emit traffic
    seed distinct requests zipf burst no_profiles json_out min_hit_rate
    min_speedup =
  Serve.Errors.exit_of ~file:"dpoptd" (fun () ->
      if traffic then
        let requests =
          match requests with
          | Some n -> n
          | None -> Harness.Env.get "DPOPTD_REQS"
        in
        run_traffic ~jobs ~seed ~distinct ~requests ~zipf ~burst
          ~profiles:(not no_profiles) ~json_out ~min_hit_rate ~min_speedup
      else if inputs = [] then begin
        Fmt.epr "dpoptd: no inputs (pass source files, or --traffic)@.";
        1
      end
      else
        let opts =
          Dpopt.Pipeline.make ?threshold ?cfactor ?granularity ?agg_threshold
            ()
        in
        run_batch ~inputs ~opts ~jobs ~emit)

let cmd =
  let doc =
    "batched, content-addressed compile service for dynamic-parallelism \
     optimization"
  in
  Cmd.v
    (Cmd.info "dpoptd" ~version:"1.0.0" ~doc)
    Term.(
      const run $ inputs $ threshold $ cfactor $ granularity $ agg_threshold
      $ jobs $ emit $ traffic $ seed $ distinct $ requests $ zipf $ burst
      $ no_profiles $ json_out $ min_hit_rate $ min_speedup)

let () = exit (Cmd.eval' cmd)
