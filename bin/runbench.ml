(** runbench — run one benchmark/dataset under one optimization variant in
    the GPU simulator and print its time and metrics.

    {v
    runbench BFS KRON                       # plain CDP
    runbench BFS KRON --no-cdp
    runbench SSSP CNR -T 64 -C 8 -A multiblock:8
    runbench BT T2048-C64 -T 128 -A block --size medium
    runbench --sweep -j 4                   # full registry x variants,
                                            # 4 domains, BENCH_sweep.json
    v} *)

open Cmdliner

let granularity_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "warp" -> Ok Dpopt.Aggregation.Warp
    | "block" -> Ok Dpopt.Aggregation.Block
    | "grid" -> Ok Dpopt.Aggregation.Grid
    | s -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "multiblock" -> (
            match
              int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
            with
            | Some g when g > 0 -> Ok (Dpopt.Aggregation.Multi_block g)
            | _ -> Error (`Msg "multiblock:<n> needs a positive integer"))
        | _ -> Error (`Msg (Fmt.str "unknown granularity %S" s)))
  in
  Arg.conv (parse, Dpopt.Aggregation.pp_granularity)

let size_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "small" -> Ok Benchmarks.Registry.Small
        | "medium" -> Ok Benchmarks.Registry.Medium
        | "large" -> Ok Benchmarks.Registry.Large
        | s ->
            Error (`Msg (Fmt.str "unknown size %S (small | medium | large)" s))),
      fun ppf s ->
        Fmt.string ppf
          (match s with
          | Benchmarks.Registry.Small -> "small"
          | Benchmarks.Registry.Medium -> "medium"
          | Benchmarks.Registry.Large -> "large") )

let bench =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"BENCH" ~doc:"Benchmark: BFS, BT, MSTF, MSTV, SP, SSSP, TC.")

let dataset =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"DATASET"
        ~doc:"Dataset: KRON, CNR, ROAD, T0032-C16, T2048-C64, RAND-3, 5-SAT.")

let sweep =
  Arg.(
    value & flag
    & info [ "sweep" ]
        ~doc:
          "Instead of one cell, run the whole registry (every \
           benchmark/dataset of Table I plus the road graphs) under every \
           code version, print the speedup table and write the \
           $(b,BENCH_sweep.json) artifact. Cells run in parallel under \
           $(b,-j); measurements are bit-identical at any parallelism.")

let jobs =
  Arg.(
    value & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--sweep) (default: available cores minus \
           one). $(b,-j 1) runs sequentially.")

let out =
  Arg.(
    value
    & opt string "BENCH_sweep.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the sweep JSON artifact.")

let csv_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE"
        ~doc:"Also write the sweep as long-format CSV.")

let costmodel_out =
  Arg.(
    value
    & opt string "BENCH_costmodel.json"
    & info [ "costmodel-out" ] ~docv:"FILE"
        ~doc:
          "Where $(b,--sweep) writes the cost-model artifact (rank \
           correlation and surrogate-tuning runs saved per benchmark).")

let calibrate =
  Arg.(
    value & flag
    & info [ "calibrate" ]
        ~doc:
          "Fit the analytical cost model (lib/costmodel): run every \
           registry benchmark under the standard calibration corpus (8 \
           pass combinations x 2 knob sets), fit the coefficient table by \
           weighted non-negative least squares, print it as OCaml source \
           for lib/costmodel/table.ml, and report per-benchmark rank \
           correlation of the fitted model over the default-knob combos.")

let only =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "only" ] ~docv:"BENCH,..."
        ~doc:
          "With $(b,--calibrate): restrict to these benchmark names \
           (comma-separated, e.g. $(b,BFS,BT)). The $(b,@model) alias uses \
           this for its two-benchmark calibrate-and-validate smoke.")

let no_cdp = Arg.(value & flag & info [ "no-cdp" ] ~doc:"Run the non-CDP version.")

let threshold =
  Arg.(value & opt (some int) None & info [ "T"; "threshold" ] ~docv:"N")

let cfactor =
  Arg.(value & opt (some int) None & info [ "C"; "coarsen" ] ~docv:"FACTOR")

let granularity =
  Arg.(
    value
    & opt (some granularity_conv) None
    & info [ "A"; "aggregate" ] ~docv:"GRAN")

let size =
  Arg.(
    value
    & opt size_conv Benchmarks.Registry.Small
    & info [ "size" ] ~docv:"SIZE"
        ~doc:
          "Dataset scale: small, medium or large. The large tier is \
           paper-scale (RMAT scale 13, 100k+ Bezier lines) and is meant to \
           be run with $(b,--sample).")

let sample =
  Arg.(
    value & flag
    & info [ "sample" ]
        ~doc:
          "Simulate only a deterministic stratified sample of each large \
           grid's blocks and extrapolate the metrics (with a reported error \
           bound). Output validation is skipped — sampled results are \
           estimates by construction. Size-appropriate fractions: the \
           defaults at small/medium, ~2% block coverage at large.")

let exact =
  Arg.(
    value & flag
    & info [ "exact" ]
        ~doc:
          "Force full (exact) simulation, overriding $(b,--sample). Exact \
           runs are bit-identical to the pre-sampling scheduler.")

let block_jobs =
  Arg.(
    value & opt int 1
    & info [ "block-jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for within-run parallel execution of provably \
           conflict-free block batches. Results are byte-identical at any \
           value; only host wall clock changes.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Print a per-grid execution timeline (launch issue, queue wait, \
           execution span, blocks, SM footprint).")

let engine_conv =
  let parse s =
    match Gpusim.Config.engine_of_string s with
    | Some e -> Ok e
    | None ->
        Error (`Msg (Fmt.str "unknown engine %S (expected closure | bytecode)" s))
  in
  Arg.conv (parse, Gpusim.Config.pp_engine)

let engine =
  Arg.(
    value & opt engine_conv Gpusim.Config.default.engine
    & info [ "engine" ] ~docv:"E"
        ~doc:
          "Simulator execution engine for single-cell runs: $(b,closure) or \
           $(b,bytecode). Simulated cycles, metrics and output fingerprints \
           are identical under both; only host wall clock differs.")

let backend =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Execution backend: $(b,sim) (the GPU simulator, default) or \
           $(b,native) (transpile the selected variant to parallel OCaml, \
           compile and run it on host domains, and diff its memory dump \
           against the simulator). The native backend needs a static host \
           driver and so only covers BT, SP and TC.")

let tenants =
  Arg.(
    value
    & opt (some int) None
    & info [ "tenants" ] ~docv:"N"
        ~doc:
          "Multi-tenant mode: instead of one benchmark cell, run $(docv) \
           concurrent host streams of bursty nested-launch jobs against one \
           shared simulated device — under the baseline pipeline and the \
           optimized one, each also isolated per tenant — and report \
           per-tenant latency percentiles, slowdown vs isolated, Jain \
           fairness and launch-queue wait attribution. Writes the \
           $(b,BENCH_mt.json) artifact (see $(b,--mt-out)).")

let policy =
  Arg.(
    value & opt string "fair"
    & info [ "policy" ] ~docv:"P"
        ~doc:
          "Admission policy for $(b,--tenants): $(b,fifo), $(b,rr), \
           $(b,fair), $(b,fair:w1,w2,..), $(b,priority) or \
           $(b,priority:bound).")

let mt_seed =
  Arg.(
    value & opt int 42
    & info [ "mt-seed" ] ~docv:"SEED"
        ~doc:"Traffic seed for $(b,--tenants); runs are byte-identical per seed.")

let mt_jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "mt-jobs" ] ~docv:"N"
        ~doc:
          "Jobs per tenant for $(b,--tenants) (default: the MT_SMOKE_JOBS \
           knob, read through Harness.Env).")

let slots =
  Arg.(
    value
    & opt (some int) None
    & info [ "slots" ] ~docv:"N"
        ~doc:
          "Concurrent admitted jobs device-wide for $(b,--tenants) \
           (default: two per tenant, so the measured interference is \
           device contention, not admission queueing).")

let mt_out =
  Arg.(
    value & opt string "BENCH_mt.json"
    & info [ "mt-out" ] ~docv:"FILE"
        ~doc:"Where $(b,--tenants) writes the multi-tenant JSON artifact.")

let min_fairness =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-fairness" ] ~docv:"F"
        ~doc:
          "With $(b,--tenants): exit 1 unless the optimized pipeline's Jain \
           fairness index is at least $(docv). The $(b,@mt) alias gates on \
           this.")

let min_recovery =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-recovery" ] ~docv:"R"
        ~doc:
          "With $(b,--tenants): exit 1 unless baseline mean slowdown \
           exceeds optimized mean slowdown by at least the factor $(docv). \
           The $(b,@mt) alias gates on this.")

let run_sweep ~jobs ~size ~out ~csv_out ~costmodel_out =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Harness.Pool.default_jobs ()
  in
  Fmt.epr "sweep: %d worker domain%s@." jobs (if jobs = 1 then "" else "s");
  let t, cm =
    Harness.Pool.with_pool ~jobs (fun pool ->
        let t = Harness.Sweep.run ~size ~pool () in
        let cm = Harness.Costreport.collect ~size ~pool () in
        (t, cm))
  in
  Harness.Sweep.print_table t;
  Harness.Costreport.print_table cm;
  Harness.Sweep.write_json out t;
  Fmt.epr "wrote %s@." out;
  Harness.Costreport.write_json costmodel_out cm;
  Fmt.epr "wrote %s@." costmodel_out;
  (match csv_out with
  | None -> ()
  | Some p ->
      Harness.Sweep.write_csv p t;
      Fmt.epr "wrote %s@." p);
  (* wall-clock summary is host timing -> stderr, keeping stdout
     deterministic across -j levels *)
  Fmt.epr "sweep wall clock: %.1fs at -j %d (sequential estimate %.1fs, \
           speedup %.2fx)@."
    t.sw_wall_parallel_s t.sw_jobs t.sw_wall_sequential_est_s
    (t.sw_wall_sequential_est_s /. t.sw_wall_parallel_s);
  0

let run_calibrate ~jobs ~size ~only =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Harness.Pool.default_jobs ()
  in
  let specs =
    Benchmarks.Registry.all ~size () @ Benchmarks.Registry.road ~size ()
  in
  let specs =
    match only with
    | None -> specs
    | Some names ->
        let names = List.map String.uppercase_ascii names in
        List.filter
          (fun (s : Benchmarks.Bench_common.spec) ->
            List.mem (String.uppercase_ascii s.name) names)
          specs
  in
  Fmt.epr "calibrate: %d spec%s x 8 combos x 2 knob sets, %d worker domain%s@."
    (List.length specs)
    (if List.length specs = 1 then "" else "s")
    jobs
    (if jobs = 1 then "" else "s");
  let per_spec =
    Harness.Pool.with_pool ~jobs (fun pool ->
        Harness.Pool.map_list pool Costmodel.Calibrate.collect_corpus specs)
  in
  let samples = List.concat per_spec in
  let coeffs =
    Costmodel.Calibrate.fit_coeffs
      ~version:Costmodel.Table.current.Costmodel.Model.version samples
  in
  Fmt.pr "(* fitted on %d samples; paste into lib/costmodel/table.ml *)@."
    (List.length samples);
  Costmodel.Calibrate.print_table Fmt.stdout coeffs;
  Fmt.pr "@.%-6s %-10s %9s %9s@." "bench" "dataset" "spearman" "kendall";
  let rhos =
    List.map2
      (fun (spec : Benchmarks.Bench_common.spec) ss ->
        (* validate on the default-knob half of the corpus: the 8 pass
           combinations the acceptance metric is defined over *)
        let ss = List.filteri (fun i _ -> i < 8) ss in
        let meas = List.map (fun s -> s.Costmodel.Calibrate.s_measured) ss in
        let pred = List.map (Costmodel.Calibrate.predict_sample coeffs) ss in
        let rho = Harness.Stats.spearman pred meas in
        Fmt.pr "%-6s %-10s %9.3f %9.3f@." spec.name spec.dataset rho
          (Harness.Stats.kendall_tau pred meas);
        rho)
      specs per_spec
  in
  Fmt.pr "mean spearman over %d benchmark cells: %.3f@." (List.length rhos)
    (Harness.Stats.mean rhos);
  0

(* Native-backend single-cell run: transpile the selected variant to
   parallel OCaml, compile and run it under dune, and require its memory
   dump to be byte-identical to the simulator's on the same variant.
   Exit 0 on a verified match, 1 for user-level errors (no static host
   driver, construct the backend rejects), 2 on divergence. *)
let run_native (spec : Benchmarks.Bench_common.spec) no_cdp threshold cfactor
    granularity engine =
  match spec.native_host with
  | None ->
      Fmt.epr
        "%s/%s: host driver is iterative (read-back-driven); the native \
         backend only runs benchmarks with a static host spec (BT, SP, TC)@."
        spec.name spec.dataset;
      1
  | Some host -> (
      let prog =
        Minicu.Parser.program
          (if no_cdp then spec.no_cdp_src else spec.cdp_src)
      in
      let prog, autos, label =
        if no_cdp then (prog, [], "no-cdp")
        else
          let opts = Dpopt.Pipeline.make ?threshold ?cfactor ?granularity () in
          let r = Dpopt.Pipeline.run ~opts prog in
          (r.prog, r.auto_params, "cdp")
      in
      match Native.Emit.supported prog with
      | Some (loc, msg) ->
          Fmt.epr "%a: native backend: %s@." Minicu.Loc.pp loc msg;
          1
      | None ->
          let variants =
            [ { Native.Emit.vu_label = label; vu_prog = prog; vu_autos = autos } ]
          in
          (* Repeated executions of the one compiled binary: the covered
             benchmarks are order-independent, so every run — whatever the
             domain scheduling — must reproduce the simulator's dump.
             NATIVE_SMOKE_ITERS sizes the @native alias smoke. *)
          let runs = Harness.Env.get "NATIVE_SMOKE_ITERS" in
          let outs =
            Native.Build.compile_and_run_many ~runs
              ~source:(Native.Emit.unit_source ~variants ~host)
              ()
          in
          let cfg = { Gpusim.Config.default with engine } in
          let sim =
            Native.Hostspec.render_dump
              (Native.Hostspec.run_sim ~cfg prog ~auto_params:autos host)
          in
          let bad = ref 0 in
          List.iteri
            (fun i out ->
              match List.assoc_opt label (Native.Build.sections out) with
              | None ->
                  incr bad;
                  Fmt.epr "run %d: emitted program produced no dump@." i
              | Some native when String.equal sim native -> ()
              | Some native ->
                  incr bad;
                  Fmt.epr
                    "NATIVE/SIM DIVERGENCE on %s/%s %s (run %d):@.-- native \
                     --@.%s@.-- sim --@.%s@."
                    spec.name spec.dataset label i native sim)
            outs;
          if !bad = 0 then begin
            Fmt.pr "%s / %s under %s (native backend)@." spec.name spec.dataset
              label;
            Fmt.pr "%s@." sim;
            Fmt.pr
              "native dump matches GpuSim (%a engine) byte-for-byte across %d \
               run%s@."
              Gpusim.Config.pp_engine engine runs
              (if runs = 1 then "" else "s");
            0
          end
          else 2)

(* Multi-tenant mode: shared-device congestion vs per-tenant isolation,
   baseline vs optimized pipeline. Exit 0, or 1 when a --min-fairness /
   --min-recovery gate fails (the @mt alias pins both). *)
let run_mt ~tenants ~policy ~mt_seed ~mt_jobs ~slots ~jobs ~mt_out
    ~min_fairness ~min_recovery ~engine =
  match Tenancy.Policy.of_string policy with
  | Error msg ->
      Fmt.epr "runbench: %s@." msg;
      2
  | Ok pol ->
      if tenants <= 0 then begin
        Fmt.epr "runbench: --tenants must be positive@.";
        2
      end
      else begin
        let jobs_per_tenant =
          match mt_jobs with
          | Some n -> max 1 n
          | None -> Harness.Env.get "MT_SMOKE_JOBS"
        in
        let slots =
          match slots with Some s -> max 1 s | None -> 2 * tenants
        in
        let tcfg =
          { Tenancy.Traffic.default with seed = mt_seed; tenants; jobs_per_tenant }
        in
        let cell =
          {
            Tenancy.Sim.sm_cfg = { Gpusim.Config.default with engine };
            policy = pol;
            slots;
          }
        in
        let jobs =
          match jobs with Some j -> max 1 j | None -> Harness.Pool.default_jobs ()
        in
        Fmt.epr "multi-tenant: %d worker domain%s@." jobs
          (if jobs = 1 then "" else "s");
        let r =
          Harness.Pool.with_pool ~jobs (fun pool ->
              Tenancy.Report.run ~pool cell tcfg)
        in
        Tenancy.Report.print Fmt.stdout r;
        Tenancy.Report.write_json mt_out r;
        Fmt.epr "wrote %s@." mt_out;
        let failed = ref false in
        (match min_fairness with
        | Some b when not (r.rs_optimized.cp_fairness >= b) ->
            failed := true;
            Fmt.epr
              "GATE FAILURE: optimized fairness %.3f below the %.3f floor@."
              r.rs_optimized.cp_fairness b
        | _ -> ());
        (match min_recovery with
        | Some b when not (r.rs_recovery >= b) ->
            failed := true;
            Fmt.epr "GATE FAILURE: recovery %.2fx below the %.2fx floor@."
              r.rs_recovery b
        | _ -> ());
        if !failed then 1 else 0
      end

let run_one bench dataset no_cdp threshold cfactor granularity size trace
    engine backend ~sample ~exact ~block_jobs =
  match Benchmarks.Registry.find ~size ~name:bench ~dataset () with
  | None ->
      Fmt.epr "unknown benchmark/dataset pair %s/%s@." bench dataset;
      1
  | Some spec when backend = `Native ->
      run_native spec no_cdp threshold cfactor granularity engine
  | Some spec -> (
      let sampling =
        if sample && not exact then
          Some (Harness.Experiment.sampling_for_size size)
        else None
      in
      let cfg =
        {
          Gpusim.Config.default with
          engine;
          sampling;
          block_jobs = max 1 block_jobs;
        }
      in
      let variant =
        if no_cdp then Harness.Variant.No_cdp
        else
          Harness.Variant.Cdp
            (Dpopt.Pipeline.make ?threshold ?cfactor ?granularity ())
      in
      if trace then begin
        (* traced run: drive the device directly so we can read the events *)
        let v =
          match variant with
          | Harness.Variant.No_cdp -> `No_cdp
          | Harness.Variant.Cdp o -> `Cdp o
        in
        let dev = Benchmarks.Bench_common.load_variant ~cfg spec v in
        Gpusim.Device.enable_trace dev;
        ignore (spec.run dev);
        Fmt.pr "%a@." Gpusim.Trace.timeline (Gpusim.Device.trace_events dev)
      end;
      match Harness.Experiment.run ~cfg spec variant with
      | m ->
          Fmt.pr "%s / %s under %s@." m.bench m.dataset m.variant;
          if m.sampled then (
            Fmt.pr "simulated time: %.0f cycles (extrapolated)@." m.time;
            Fmt.pr
              "output fingerprint: %d (NOT validated: sampled run, outputs \
               are estimates)@."
              m.fingerprint)
          else begin
            Fmt.pr "simulated time: %.0f cycles@." m.time;
            Fmt.pr "output fingerprint: %d (validated against reference)@."
              m.fingerprint
          end;
          Fmt.pr
            "grids=%d (device %d, host %d) blocks=%d threads=%d@."
            m.snap.grids_launched m.snap.device_launches m.snap.host_launches
            m.snap.blocks_executed m.snap.threads_executed;
          Fmt.pr
            "breakdown: parent=%.0f child=%.0f agg=%.0f disagg=%.0f \
             launch=%.0f serialized=%d max_pending=%d@."
            m.snap.parent_cycles m.snap.child_cycles m.snap.agg_cycles
            m.snap.disagg_cycles m.snap.launch_cycles
            m.snap.serialized_launches m.snap.max_pending_launches;
          Option.iter
            (fun r -> Fmt.pr "sampling: %a@." Costmodel.Extrapolate.pp r)
            m.extrapolation;
          0
      | exception Harness.Experiment.Validation_failure msg ->
          Fmt.epr "VALIDATION FAILURE: %s@." msg;
          2)

let run bench dataset sweep calibrate only jobs out csv_out costmodel_out
    no_cdp threshold cfactor granularity size trace engine backend tenants
    policy mt_seed mt_jobs slots mt_out min_fairness min_recovery sample exact
    block_jobs =
  if calibrate then run_calibrate ~jobs ~size ~only
  else if sweep then run_sweep ~jobs ~size ~out ~csv_out ~costmodel_out
  else
    match tenants with
    | Some tenants ->
        run_mt ~tenants ~policy ~mt_seed ~mt_jobs ~slots ~jobs ~mt_out
          ~min_fairness ~min_recovery ~engine
    | None -> (
        match (bench, dataset) with
        | Some bench, Some dataset ->
            run_one bench dataset no_cdp threshold cfactor granularity size
              trace engine backend ~sample ~exact ~block_jobs
        | _ ->
            Fmt.epr
              "runbench: BENCH and DATASET are required unless --sweep or \
               --tenants@.";
            2)

let cmd =
  Cmd.v
    (Cmd.info "runbench" ~version:"1.0.0"
       ~doc:"run one paper benchmark in the GPU simulator")
    Term.(
      const run $ bench $ dataset $ sweep $ calibrate $ only $ jobs $ out
      $ csv_out $ costmodel_out $ no_cdp $ threshold $ cfactor $ granularity
      $ size $ trace $ engine $ backend $ tenants $ policy $ mt_seed $ mt_jobs
      $ slots $ mt_out $ min_fairness $ min_recovery $ sample $ exact
      $ block_jobs)

let () = exit (Cmd.eval' cmd)
