(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section from the simulator, plus Bechamel microbenchmarks of
   the compiler passes themselves.

   Usage:
     dune exec bench/main.exe                 # everything (small datasets)
     dune exec bench/main.exe -- fig9 fig12   # selected experiments
     dune exec bench/main.exe -- all --size=medium
     dune exec bench/main.exe -- fig9 --csv=results/   # also write CSVs
     dune exec bench/main.exe -- all -j 4     # figure cells on 4 domains

   Experiments: table1 fig9 fig10 fig11 fig12 fixed128 ablation micro
   engine-smoke (the last only when named explicitly: it is the bytecode
   engine's throughput acceptance gate and exits 1 below 5x).

   --engine=closure|bytecode selects the simulator execution engine for
   the figure experiments (results are identical; only wall clock
   changes). *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%.1fs wall]\n%!" (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: compiler-pass throughput                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let src = Test_prog.nested_src in
  let prog = Minicu.Parser.program src in
  let mk name f = Test.make ~name (Staged.stage f) in
  (* one Test.make per compiler stage *)
  let tests =
    Test.make_grouped ~name:"passes"
      [
        mk "parse" (fun () -> Minicu.Parser.program src);
        mk "typecheck" (fun () -> Minicu.Typecheck.check prog);
        mk "pretty-print" (fun () -> Minicu.Pretty.program prog);
        mk "thresholding" (fun () ->
            Dpopt.Thresholding.transform
              ~opts:{ Dpopt.Thresholding.threshold = 32 }
              prog);
        mk "coarsening" (fun () ->
            Dpopt.Coarsening.transform ~opts:{ Dpopt.Coarsening.cfactor = 8 }
              prog);
        mk "aggregation-block" (fun () ->
            Dpopt.Aggregation.transform
              ~opts:
                {
                  Dpopt.Aggregation.granularity = Dpopt.Aggregation.Block;
                  agg_threshold = None;
                }
              prog);
        mk "aggregation-multiblock" (fun () ->
            Dpopt.Aggregation.transform
              ~opts:
                {
                  Dpopt.Aggregation.granularity =
                    Dpopt.Aggregation.Multi_block 8;
                  agg_threshold = None;
                }
              prog);
        mk "full-pipeline-TCA" (fun () ->
            Dpopt.Pipeline.run
              ~opts:
                (Dpopt.Pipeline.make ~threshold:32 ~cfactor:8
                   ~granularity:(Dpopt.Aggregation.Multi_block 8) ())
              prog);
        mk "simulator-compile" (fun () ->
            Gpusim.Compile.compile Gpusim.Config.default prog);
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n=== Microbenchmarks: compiler pass throughput ===\n";
  Printf.printf "%-40s %14s\n" "pass" "time/run";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          let pretty =
            if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Printf.printf "%-40s %14s\n" name pretty
      | _ -> Printf.printf "%-40s %14s\n" name "-")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Engine smoke: bytecode-vs-closure throughput gate                   *)
(* ------------------------------------------------------------------ *)

(* Micro-kernel throughput comparison of the two execution engines, used
   by the [@ir] alias as an acceptance gate: the bytecode VM must beat the
   closure interpreter by at least 5x on the counting-loop micro kernel,
   and outputs must match bit-for-bit on every kernel. The loop trip
   count is tunable via BYTECODE_SMOKE_ITERS (see Harness.Env) so CI can
   trade gate stability for wall clock. *)
let engine_smoke () =
  let iters = Harness.Env.get "BYTECODE_SMOKE_ITERS" in
  let kernels =
    [
      (* gated: the rotated-loop bottom is one fused VM dispatch, the
         shape where flat dispatch pays off most *)
      ( "count-loop",
        {|
__global__ void micro(int* out, int iters) {
  int s = 0;
  for (int k = 0; k < iters; k = k + 1) { }
  out[threadIdx.x] = s;
}
|}
      );
      (* reported, not gated: one arithmetic instruction per iteration *)
      ( "int-accumulate",
        {|
__global__ void micro(int* out, int iters) {
  int s = 0;
  for (int k = 0; k < iters; k = k + 1) { s = s + k; }
  out[threadIdx.x] = s;
}
|}
      );
    ]
  in
  let time_engine engine src =
    let cfg = { Gpusim.Config.default with Gpusim.Config.engine } in
    let prog = Minicu.Parser.program src in
    let dev = Gpusim.Device.create ~cfg () in
    Gpusim.Device.load_program dev prog;
    let out = Gpusim.Device.alloc_int_zeros dev 256 in
    let launch () =
      Gpusim.Device.launch dev ~kernel:"micro" ~grid:(1, 1, 1)
        ~block:(256, 1, 1)
        ~args:[ Gpusim.Value.Ptr out; Gpusim.Value.Int iters ];
      ignore (Gpusim.Device.sync dev)
    in
    (* warm-up run outside the timed region; then best-of-3 timed
       launches — the min filters out scheduler/frequency noise, which
       on shared machines dwarfs the per-launch variance of either
       engine *)
    launch ();
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      launch ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (!best, Gpusim.Device.read_ints dev out 256)
  in
  Printf.printf "\n=== Engine smoke: closure vs bytecode (%d iters) ===\n"
    iters;
  Printf.printf "%-16s %10s %10s %8s %s\n" "kernel" "closure" "bytecode"
    "speedup" "outputs";
  let gate_ok = ref true in
  List.iter
    (fun (name, src) ->
      let tc, rc = time_engine Gpusim.Config.Closure src in
      let tb, rb = time_engine Gpusim.Config.Bytecode src in
      let speedup = tc /. tb in
      let same = rc = rb in
      if not same then gate_ok := false;
      if name = "count-loop" && speedup < 5.0 then gate_ok := false;
      Printf.printf "%-16s %9.3fs %9.3fs %7.2fx %s\n" name tc tb speedup
        (if same then "identical" else "MISMATCH"))
    kernels;
  if not !gate_ok then begin
    Printf.printf
      "engine smoke FAILED: bytecode engine below 5x on the gated kernel, \
       or an output mismatch\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Paper-scale execution: the scale trajectory and the @scale smoke    *)
(* ------------------------------------------------------------------ *)

let json_string s =
  "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

(* The geomean-vs-scale trajectory: the Fig. 9 matrix at every registry
   tier (large sampled), plus the Fig. 12 road matrix at large. The paper's
   thesis is that the optimizations matter MORE at scale; the artifact pins
   the CDP+T+C+A-over-No-CDP geomean rising with dataset size. *)
let scale_trajectory ~pool ~block_jobs () =
  let headline_nocdp = "CDP+T+C+A over No CDP (paper: 8.7x)" in
  let headline_cdp = "CDP+T+C+A over CDP (paper: 43.0x)" in
  let tier (size, label) =
    let sampling =
      match size with
      | Benchmarks.Registry.Large ->
          Some (Harness.Experiment.sampling_for_size size)
      | _ -> None
    in
    let cfg =
      { Gpusim.Config.default with sampling; block_jobs = max 1 block_jobs }
    in
    Printf.printf "\n=== scale tier %s (%s) ===\n%!" label
      (if sampling = None then "exact" else "sampled");
    let t0 = Unix.gettimeofday () in
    let rows, heads = Harness.Figures.fig9 ~cfg ~pool ~size () in
    let wall = Unix.gettimeofday () -. t0 in
    let geo l = try List.assoc l heads with Not_found -> nan in
    (label, sampling <> None, List.length rows, wall,
     geo headline_nocdp, geo headline_cdp)
  in
  let tiers =
    List.map tier
      [
        (Benchmarks.Registry.Small, "small");
        (Benchmarks.Registry.Medium, "medium");
        (Benchmarks.Registry.Large, "large");
      ]
  in
  let cfg_large =
    {
      Gpusim.Config.default with
      sampling =
        Some (Harness.Experiment.sampling_for_size Benchmarks.Registry.Large);
      block_jobs = max 1 block_jobs;
    }
  in
  Printf.printf "\n=== scale tier large: Fig. 12 road matrix (sampled) ===\n%!";
  let _, fig12_geo =
    Harness.Figures.fig12 ~cfg:cfg_large ~pool ~size:Benchmarks.Registry.Large
      ()
  in
  Printf.printf "\n=== geomean-vs-scale trajectory ===\n";
  Printf.printf "%-8s %-8s %6s %24s %24s %10s\n" "tier" "mode" "specs"
    "CDP+T+C+A/No-CDP" "CDP+T+C+A/CDP" "wall";
  List.iter
    (fun (label, sampled, specs, wall, g_nocdp, g_cdp) ->
      Printf.printf "%-8s %-8s %6d %24s %24s %9.1fs\n" label
        (if sampled then "sampled" else "exact")
        specs
        (Harness.Stats.speedup_to_string g_nocdp)
        (Harness.Stats.speedup_to_string g_cdp)
        wall)
    tiers;
  Printf.printf "fig12 large (road, sampled) CDP+T+C+A/No-CDP: %s\n"
    (Harness.Stats.speedup_to_string fig12_geo);
  let geos = List.map (fun (_, _, _, _, g, _) -> g) tiers in
  let monotone =
    match geos with
    | [ s; m; l ] -> s < m && m < l
    | _ -> false
  in
  Printf.printf "CDP+T+C+A/No-CDP strictly increases with scale: %s\n"
    (if monotone then "yes" else "NO (trajectory regression)");
  let path = "BENCH_scale.json" in
  Out_channel.with_open_text path (fun oc ->
      let p fmt = Printf.fprintf oc fmt in
      p "{\n";
      p "  \"schema\": 1,\n";
      p "  \"kind\": \"dpopt.scale\",\n";
      p "  \"block_jobs\": %d,\n" (max 1 block_jobs);
      p "  \"tiers\": [\n";
      List.iteri
        (fun i (label, sampled, specs, wall, g_nocdp, g_cdp) ->
          p
            "    {\"size\": %s, \"sampled\": %b, \"specs\": %d, \
             \"geomean_tca_over_nocdp\": %.4f, \"geomean_tca_over_cdp\": \
             %.4f, \"wall_s\": %.1f}%s\n"
            (json_string label) sampled specs g_nocdp g_cdp wall
            (if i = List.length tiers - 1 then "" else ","))
        tiers;
      p "  ],\n";
      p "  \"fig12_large_geomean_tca_over_nocdp\": %.4f,\n" fig12_geo;
      p "  \"monotone_tca_over_nocdp\": %b\n" monotone;
      p "}\n");
  Printf.printf "wrote %s\n" path

(* The @scale acceptance gate. Deterministic parts always run: sampled
   extrapolation within 10% of exact on SCALE_SMOKE medium-tier cells,
   parallel dispatch byte-identical with average batch width >= 2 at
   SCALE_JOBS, large-tier degree skew, and a large sampled cell completing
   end to end. The wall-clock >= 2x speedup check needs real cores, so it
   only arms when the host has at least 4. Exits 1 on any failure. *)
let scale_smoke () =
  let jobs = Harness.Env.get "SCALE_JOBS" in
  let n_specs = Harness.Env.get "SCALE_SMOKE" in
  let failures = ref [] in
  let gate name ok detail =
    Printf.printf "  [%s] %-28s %s\n%!"
      (if ok then "ok" else "FAIL")
      name detail;
    if not ok then failures := name :: !failures
  in
  Printf.printf "\n=== scale smoke (SCALE_JOBS=%d, SCALE_SMOKE=%d) ===\n" jobs
    n_specs;

  (* 1. the large tier is in the paper's degree regime *)
  let kron, _, _, _, _, _, _ =
    Benchmarks.Registry.datasets Benchmarks.Registry.Large
  in
  let ratio =
    float_of_int (Workloads.Csr.max_degree kron.graph)
    /. Workloads.Csr.avg_degree kron.graph
  in
  gate "large-degree-skew" (ratio >= 100.0)
    (Printf.sprintf "KRON max/avg degree %.0f (floor 100)" ratio);

  (* 2. sampled medium cells extrapolate within 10% of exact *)
  let candidates =
    [ ("BT", "T0032-C16"); ("BFS", "KRON"); ("SSSP", "CNR"); ("SP", "RAND-3") ]
  in
  let picked = List.filteri (fun i _ -> i < n_specs) candidates in
  List.iter
    (fun (name, dataset) ->
      match
        Benchmarks.Registry.find ~size:Benchmarks.Registry.Medium ~name
          ~dataset ()
      with
      | None -> gate "extrapolation" false (name ^ "/" ^ dataset ^ " missing")
      | Some spec ->
          let run cfg =
            Harness.Experiment.run ~cfg spec
              (Harness.Variant.Cdp Dpopt.Pipeline.none)
          in
          let exact = run Gpusim.Config.default in
          let sampled =
            run
              {
                Gpusim.Config.default with
                sampling = Some Gpusim.Config.default_sampling;
              }
          in
          let err =
            Float.abs (sampled.time -. exact.time) /. exact.time
          in
          gate
            (Printf.sprintf "extrapolation %s/%s" name dataset)
            (sampled.sampled && err <= 0.10)
            (Printf.sprintf "error %.1f%% (exact %.0f, sampled %.0f)"
               (100.0 *. err) exact.time sampled.time))
    picked;

  (* 3. parallel dispatch: byte-identity plus batch occupancy at -jN.
     The occupancy measure (average batch width) is deterministic, so it
     gates even on single-core hosts where wall clock cannot. *)
  let src =
    {|
__global__ void owned(int* out, int n, int iters) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int s = 0;
  for (int k = 0; k < iters; k = k + 1) { s = s + k; }
  if (i < n) { out[i] = s + i; }
}
|}
  in
  let prog = Minicu.Parser.program src in
  let run_owned ~block_jobs ~blocks ~iters =
    let cfg = { Gpusim.Config.default with block_jobs } in
    let dev = Gpusim.Device.create ~cfg () in
    Gpusim.Device.load_program dev prog;
    let n = blocks * 32 in
    let out = Gpusim.Device.alloc_int_zeros dev n in
    let t0 = Unix.gettimeofday () in
    Gpusim.Device.launch dev ~kernel:"owned" ~grid:(blocks, 1, 1)
      ~block:(32, 1, 1)
      ~args:[ Gpusim.Value.Ptr out; Gpusim.Value.Int n; Gpusim.Value.Int iters ];
    let time = Gpusim.Device.sync dev in
    let wall = Unix.gettimeofday () -. t0 in
    (time, Gpusim.Device.read_ints dev out n, Gpusim.Device.par_stats dev, wall)
  in
  let t1, o1, _, _ = run_owned ~block_jobs:1 ~blocks:64 ~iters:100 in
  let tn, on, (batches, batch_blocks), _ =
    run_owned ~block_jobs:jobs ~blocks:64 ~iters:100
  in
  gate "dispatch-identity"
    (t1 = tn && o1 = on)
    (Printf.sprintf "-j1 vs -j%d: time %.0f vs %.0f, outputs %s" jobs t1 tn
       (if o1 = on then "identical" else "DIFFER"));
  let width =
    if batches = 0 then 0.0
    else float_of_int batch_blocks /. float_of_int batches
  in
  gate "dispatch-occupancy"
    (batches > 0 && width >= 2.0)
    (Printf.sprintf "%d batches, average width %.1f (floor 2.0)" batches width);

  (* 4. wall-clock speedup, only meaningful with real cores under the
     domains *)
  let cores = Domain.recommended_domain_count () in
  if cores >= 4 then begin
    let _, _, _, w1 = run_owned ~block_jobs:1 ~blocks:64 ~iters:20000 in
    let _, _, _, wn = run_owned ~block_jobs:jobs ~blocks:64 ~iters:20000 in
    gate "dispatch-speedup"
      (w1 /. wn >= 2.0)
      (Printf.sprintf "%.2fx at -j%d (floor 2.0x)" (w1 /. wn) jobs)
  end
  else
    Printf.printf
      "  [--] dispatch-speedup: skipped (%d core%s; needs >= 4 for a \
       wall-clock gate)\n"
      cores
      (if cores = 1 then "" else "s");

  (* 5. a large-tier sampled cell completes end to end with a finite
     error bound *)
  (match
     Benchmarks.Registry.find ~size:Benchmarks.Registry.Large ~name:"BFS"
       ~dataset:"KRON" ()
   with
  | None -> gate "large-sampled-run" false "BFS/KRON missing at large"
  | Some spec ->
      let t0 = Unix.gettimeofday () in
      let m =
        Harness.Experiment.run
          ~cfg:
            {
              Gpusim.Config.default with
              sampling =
                Some
                  (Harness.Experiment.sampling_for_size
                     Benchmarks.Registry.Large);
            }
          spec
          (Harness.Variant.Cdp Dpopt.Pipeline.none)
      in
      let wall = Unix.gettimeofday () -. t0 in
      gate "large-sampled-run"
        (m.sampled && Float.is_finite m.rel_std_error && m.time > 0.0)
        (Printf.sprintf "%.0f cycles extrapolated, rse %.2f%%, %.1fs wall"
           m.time
           (100.0 *. m.rel_std_error)
           wall));

  if !failures <> [] then begin
    Printf.printf "scale smoke FAILED: %s\n"
      (String.concat ", " (List.rev !failures));
    exit 1
  end;
  Printf.printf "scale smoke OK\n"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let size =
    if List.mem "--size=large" args then Benchmarks.Registry.Large
    else if List.mem "--size=medium" args then Benchmarks.Registry.Medium
    else Benchmarks.Registry.Small
  in
  (* --sample forces stratified grid sampling at any size; --exact forces
     full simulation. Default: sampled at --size=large (what makes the
     large tier routine), exact below. *)
  let sample = List.mem "--sample" args in
  let exact = List.mem "--exact" args in
  (* --block-jobs=N: worker domains for within-run parallel block batches *)
  let block_jobs =
    Option.value ~default:1
      (List.find_map
         (fun a ->
           if String.length a > 13 && String.sub a 0 13 = "--block-jobs=" then
             int_of_string_opt (String.sub a 13 (String.length a - 13))
           else None)
         args)
    |> max 1
  in
  (* -j N / --jobs=N / --jobs N: worker-domain count for figure cells *)
  let jobs, args =
    let rec scan acc = function
      | [] -> (None, List.rev acc)
      | ("-j" | "--jobs") :: n :: rest -> (int_of_string_opt n, List.rev_append acc rest)
      | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
          (int_of_string_opt (String.sub a 7 (String.length a - 7)),
           List.rev_append acc rest)
      | a :: rest -> scan (a :: acc) rest
    in
    match scan [] args with
    | Some j, rest when j >= 1 -> (j, rest)
    | Some _, rest -> (1, rest)
    | None, rest -> (1, rest)
  in
  let csv_dir =
    List.find_map
      (fun a ->
        if String.length a > 6 && String.sub a 0 6 = "--csv=" then
          Some (String.sub a 6 (String.length a - 6))
        else None)
      args
  in
  (* --engine=closure|bytecode: execution engine for the figure cells *)
  let engine =
    List.find_map
      (fun a ->
        if String.length a > 9 && String.sub a 0 9 = "--engine=" then
          match
            Gpusim.Config.engine_of_string
              (String.sub a 9 (String.length a - 9))
          with
          | Some engine -> Some engine
          | None ->
              Printf.eprintf "unknown engine in %s (closure | bytecode)\n" a;
              exit 2
        else None)
      args
  in
  let sampling =
    if exact then None
    else if sample || size = Benchmarks.Registry.Large then
      Some (Harness.Experiment.sampling_for_size size)
    else None
  in
  let cfg =
    match (engine, sampling, block_jobs) with
    | None, None, 1 -> None
    | _ ->
        Some
          {
            Gpusim.Config.default with
            engine =
              Option.value engine ~default:Gpusim.Config.default.engine;
            sampling;
            block_jobs;
          }
  in
  (match csv_dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  let csv name write =
    match csv_dir with
    | None -> ()
    | Some d ->
        let path = Filename.concat d (name ^ ".csv") in
        write path;
        Printf.printf "wrote %s\n" path
  in
  let args =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let wanted = if args = [] || List.mem "all" args then None else Some args in
  let enabled name =
    match wanted with None -> true | Some l -> List.mem name l
  in
  Printf.printf
    "Reproduction harness for 'A Compiler Framework for Optimizing Dynamic \
     Parallelism on GPUs' (CGO 2022)\n\
     Simulated device: %d SMs, warp %d, launch service %d cycles (see \
     Gpusim.Config)\n"
    Gpusim.Config.default.num_sms Gpusim.Config.default.warp_size
    Gpusim.Config.default.launch_service_interval;
  if jobs > 1 then Printf.printf "Running experiment cells on %d domains\n" jobs;
  (match sampling with
  | Some sp ->
      Printf.printf
        "Sampling ON: stratified grid sampling (block frac %.2f, launch \
         frac %.2f); times are extrapolations, outputs unvalidated\n"
        sp.Gpusim.Config.block_frac sp.Gpusim.Config.launch_frac
  | None -> ());
  if block_jobs > 1 then
    Printf.printf "Parallel block dispatch: %d worker domains per device\n"
      block_jobs;
  Harness.Pool.with_pool ~jobs @@ fun pool ->
  if enabled "table1" then wall (fun () -> Harness.Figures.table1 ~size ());
  if enabled "fig9" then
    wall (fun () ->
        let rows, _ = Harness.Figures.fig9 ?cfg ~pool ~size () in
        csv "fig9" (fun p -> Harness.Csv.fig9 p rows));
  if enabled "fig10" then
    wall (fun () ->
        let data = Harness.Figures.fig10 ?cfg ~pool ~size () in
        csv "fig10" (fun p -> Harness.Csv.fig10 p data));
  if enabled "fig11" then
    wall (fun () ->
        let data = Harness.Figures.fig11 ?cfg ~pool ~size () in
        csv "fig11" (fun p -> Harness.Csv.fig11 p data));
  if enabled "fig12" then
    wall (fun () -> ignore (Harness.Figures.fig12 ?cfg ~pool ~size ()));
  if enabled "fixed128" then
    wall (fun () -> ignore (Harness.Figures.fixed128 ?cfg ~pool ~size ()));
  if enabled "ablation" then
    wall (fun () ->
        List.iter Harness.Ablation.print (Harness.Ablation.all ~pool ()));
  if enabled "micro" then wall micro;
  (* gate experiment: only when named explicitly (exits 1 on failure) *)
  if (match wanted with Some l -> List.mem "engine-smoke" l | None -> false)
  then wall engine_smoke;
  (* scale experiments: only when named explicitly — the trajectory is a
     long run (three full fig9 tiers), the smoke is the @scale gate *)
  if (match wanted with Some l -> List.mem "scale" l | None -> false) then
    wall (fun () -> scale_trajectory ~pool ~block_jobs ());
  if (match wanted with Some l -> List.mem "scale-smoke" l | None -> false)
  then wall scale_smoke
