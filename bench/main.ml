(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section from the simulator, plus Bechamel microbenchmarks of
   the compiler passes themselves.

   Usage:
     dune exec bench/main.exe                 # everything (small datasets)
     dune exec bench/main.exe -- fig9 fig12   # selected experiments
     dune exec bench/main.exe -- all --size=medium
     dune exec bench/main.exe -- fig9 --csv=results/   # also write CSVs
     dune exec bench/main.exe -- all -j 4     # figure cells on 4 domains

   Experiments: table1 fig9 fig10 fig11 fig12 fixed128 ablation micro
   engine-smoke (the last only when named explicitly: it is the bytecode
   engine's throughput acceptance gate and exits 1 below 5x).

   --engine=closure|bytecode selects the simulator execution engine for
   the figure experiments (results are identical; only wall clock
   changes). *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%.1fs wall]\n%!" (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: compiler-pass throughput                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let src = Test_prog.nested_src in
  let prog = Minicu.Parser.program src in
  let mk name f = Test.make ~name (Staged.stage f) in
  (* one Test.make per compiler stage *)
  let tests =
    Test.make_grouped ~name:"passes"
      [
        mk "parse" (fun () -> Minicu.Parser.program src);
        mk "typecheck" (fun () -> Minicu.Typecheck.check prog);
        mk "pretty-print" (fun () -> Minicu.Pretty.program prog);
        mk "thresholding" (fun () ->
            Dpopt.Thresholding.transform
              ~opts:{ Dpopt.Thresholding.threshold = 32 }
              prog);
        mk "coarsening" (fun () ->
            Dpopt.Coarsening.transform ~opts:{ Dpopt.Coarsening.cfactor = 8 }
              prog);
        mk "aggregation-block" (fun () ->
            Dpopt.Aggregation.transform
              ~opts:
                {
                  Dpopt.Aggregation.granularity = Dpopt.Aggregation.Block;
                  agg_threshold = None;
                }
              prog);
        mk "aggregation-multiblock" (fun () ->
            Dpopt.Aggregation.transform
              ~opts:
                {
                  Dpopt.Aggregation.granularity =
                    Dpopt.Aggregation.Multi_block 8;
                  agg_threshold = None;
                }
              prog);
        mk "full-pipeline-TCA" (fun () ->
            Dpopt.Pipeline.run
              ~opts:
                (Dpopt.Pipeline.make ~threshold:32 ~cfactor:8
                   ~granularity:(Dpopt.Aggregation.Multi_block 8) ())
              prog);
        mk "simulator-compile" (fun () ->
            Gpusim.Compile.compile Gpusim.Config.default prog);
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n=== Microbenchmarks: compiler pass throughput ===\n";
  Printf.printf "%-40s %14s\n" "pass" "time/run";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          let pretty =
            if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Printf.printf "%-40s %14s\n" name pretty
      | _ -> Printf.printf "%-40s %14s\n" name "-")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Engine smoke: bytecode-vs-closure throughput gate                   *)
(* ------------------------------------------------------------------ *)

(* Micro-kernel throughput comparison of the two execution engines, used
   by the [@ir] alias as an acceptance gate: the bytecode VM must beat the
   closure interpreter by at least 5x on the counting-loop micro kernel,
   and outputs must match bit-for-bit on every kernel. The loop trip
   count is tunable via BYTECODE_SMOKE_ITERS (see Harness.Env) so CI can
   trade gate stability for wall clock. *)
let engine_smoke () =
  let iters = Harness.Env.get "BYTECODE_SMOKE_ITERS" in
  let kernels =
    [
      (* gated: the rotated-loop bottom is one fused VM dispatch, the
         shape where flat dispatch pays off most *)
      ( "count-loop",
        {|
__global__ void micro(int* out, int iters) {
  int s = 0;
  for (int k = 0; k < iters; k = k + 1) { }
  out[threadIdx.x] = s;
}
|}
      );
      (* reported, not gated: one arithmetic instruction per iteration *)
      ( "int-accumulate",
        {|
__global__ void micro(int* out, int iters) {
  int s = 0;
  for (int k = 0; k < iters; k = k + 1) { s = s + k; }
  out[threadIdx.x] = s;
}
|}
      );
    ]
  in
  let time_engine engine src =
    let cfg = { Gpusim.Config.default with Gpusim.Config.engine } in
    let prog = Minicu.Parser.program src in
    let dev = Gpusim.Device.create ~cfg () in
    Gpusim.Device.load_program dev prog;
    let out = Gpusim.Device.alloc_int_zeros dev 256 in
    let launch () =
      Gpusim.Device.launch dev ~kernel:"micro" ~grid:(1, 1, 1)
        ~block:(256, 1, 1)
        ~args:[ Gpusim.Value.Ptr out; Gpusim.Value.Int iters ];
      ignore (Gpusim.Device.sync dev)
    in
    (* warm-up run outside the timed region; then best-of-3 timed
       launches — the min filters out scheduler/frequency noise, which
       on shared machines dwarfs the per-launch variance of either
       engine *)
    launch ();
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      launch ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    (!best, Gpusim.Device.read_ints dev out 256)
  in
  Printf.printf "\n=== Engine smoke: closure vs bytecode (%d iters) ===\n"
    iters;
  Printf.printf "%-16s %10s %10s %8s %s\n" "kernel" "closure" "bytecode"
    "speedup" "outputs";
  let gate_ok = ref true in
  List.iter
    (fun (name, src) ->
      let tc, rc = time_engine Gpusim.Config.Closure src in
      let tb, rb = time_engine Gpusim.Config.Bytecode src in
      let speedup = tc /. tb in
      let same = rc = rb in
      if not same then gate_ok := false;
      if name = "count-loop" && speedup < 5.0 then gate_ok := false;
      Printf.printf "%-16s %9.3fs %9.3fs %7.2fx %s\n" name tc tb speedup
        (if same then "identical" else "MISMATCH"))
    kernels;
  if not !gate_ok then begin
    Printf.printf
      "engine smoke FAILED: bytecode engine below 5x on the gated kernel, \
       or an output mismatch\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let size =
    if List.mem "--size=medium" args then Benchmarks.Registry.Medium
    else Benchmarks.Registry.Small
  in
  (* -j N / --jobs=N / --jobs N: worker-domain count for figure cells *)
  let jobs, args =
    let rec scan acc = function
      | [] -> (None, List.rev acc)
      | ("-j" | "--jobs") :: n :: rest -> (int_of_string_opt n, List.rev_append acc rest)
      | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
          (int_of_string_opt (String.sub a 7 (String.length a - 7)),
           List.rev_append acc rest)
      | a :: rest -> scan (a :: acc) rest
    in
    match scan [] args with
    | Some j, rest when j >= 1 -> (j, rest)
    | Some _, rest -> (1, rest)
    | None, rest -> (1, rest)
  in
  let csv_dir =
    List.find_map
      (fun a ->
        if String.length a > 6 && String.sub a 0 6 = "--csv=" then
          Some (String.sub a 6 (String.length a - 6))
        else None)
      args
  in
  (* --engine=closure|bytecode: execution engine for the figure cells *)
  let cfg =
    List.find_map
      (fun a ->
        if String.length a > 9 && String.sub a 0 9 = "--engine=" then
          match
            Gpusim.Config.engine_of_string
              (String.sub a 9 (String.length a - 9))
          with
          | Some engine -> Some { Gpusim.Config.default with engine }
          | None ->
              Printf.eprintf "unknown engine in %s (closure | bytecode)\n" a;
              exit 2
        else None)
      args
  in
  (match csv_dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  let csv name write =
    match csv_dir with
    | None -> ()
    | Some d ->
        let path = Filename.concat d (name ^ ".csv") in
        write path;
        Printf.printf "wrote %s\n" path
  in
  let args =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let wanted = if args = [] || List.mem "all" args then None else Some args in
  let enabled name =
    match wanted with None -> true | Some l -> List.mem name l
  in
  Printf.printf
    "Reproduction harness for 'A Compiler Framework for Optimizing Dynamic \
     Parallelism on GPUs' (CGO 2022)\n\
     Simulated device: %d SMs, warp %d, launch service %d cycles (see \
     Gpusim.Config)\n"
    Gpusim.Config.default.num_sms Gpusim.Config.default.warp_size
    Gpusim.Config.default.launch_service_interval;
  if jobs > 1 then Printf.printf "Running experiment cells on %d domains\n" jobs;
  Harness.Pool.with_pool ~jobs @@ fun pool ->
  if enabled "table1" then wall (fun () -> Harness.Figures.table1 ~size ());
  if enabled "fig9" then
    wall (fun () ->
        let rows, _ = Harness.Figures.fig9 ?cfg ~pool ~size () in
        csv "fig9" (fun p -> Harness.Csv.fig9 p rows));
  if enabled "fig10" then
    wall (fun () ->
        let data = Harness.Figures.fig10 ?cfg ~pool ~size () in
        csv "fig10" (fun p -> Harness.Csv.fig10 p data));
  if enabled "fig11" then
    wall (fun () ->
        let data = Harness.Figures.fig11 ?cfg ~pool ~size () in
        csv "fig11" (fun p -> Harness.Csv.fig11 p data));
  if enabled "fig12" then
    wall (fun () -> ignore (Harness.Figures.fig12 ?cfg ~pool ~size ()));
  if enabled "fixed128" then
    wall (fun () -> ignore (Harness.Figures.fixed128 ?cfg ~pool ~size ()));
  if enabled "ablation" then
    wall (fun () ->
        List.iter Harness.Ablation.print (Harness.Ablation.all ~pool ()));
  if enabled "micro" then wall micro;
  (* gate experiment: only when named explicitly (exits 1 on failure) *)
  if (match wanted with Some l -> List.mem "engine-smoke" l | None -> false)
  then wall engine_smoke
