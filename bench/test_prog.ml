(* The canonical nested-parallelism program used by the pass
   microbenchmarks (same program as the test suite's Test_helpers). *)

let nested_src =
  {|
__global__ void child(int* data, int base, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    data[base + i] = data[base + i] * 2 + 1;
  }
}

__global__ void parent(int* rows, int* data, int n) {
  int v = blockIdx.x * blockDim.x + threadIdx.x;
  if (v < n) {
    int start = rows[v];
    int deg = rows[v + 1] - rows[v];
    if (deg > 0) {
      child<<<(deg + 31) / 32, 32>>>(data, start, deg);
    }
  }
}
|}
